#include "dsp/spikes.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/filters.hpp"

namespace biosense::dsp {

std::vector<double> neo(std::span<const double> x) {
  std::vector<double> out(x.size(), 0.0);
  for (std::size_t i = 1; i + 1 < x.size(); ++i) {
    out[i] = x[i] * x[i] - x[i - 1] * x[i + 1];
  }
  return out;
}

std::vector<DetectedSpike> detect_spikes(std::span<const double> trace,
                                         const SpikeDetectorConfig& cfg) {
  require(cfg.fs > 0.0, "detect_spikes: fs must be positive");
  if (trace.size() < 8) return {};

  // Band-pass (high-pass removes offsets/droop; low-pass removes
  // out-of-band noise). Second order on purpose: higher-order filters ring
  // long enough after each action potential to retrigger the detector.
  const double hi = cfg.band_hi > 0.0 ? cfg.band_hi : 0.45 * cfg.fs;
  std::vector<double> band;
  if (cfg.band_lo > 0.0 && cfg.band_lo < hi) {
    BiquadCascade cascade({Biquad::highpass(cfg.band_lo, cfg.fs),
                           Biquad::lowpass(hi, cfg.fs)});
    // Warm the filter on the first sample so the DC level does not appear
    // as a step transient (which would fire the detector at t ~ 0).
    for (int k = 0; k < 400; ++k) cascade.process(trace[0]);
    band.reserve(trace.size());
    for (double x : trace) band.push_back(cascade.process(x));
  } else {
    band.assign(trace.begin(), trace.end());
  }

  const std::vector<double>& detection_signal =
      cfg.use_neo ? neo(band) : band;

  const double sigma = mad_sigma(detection_signal);
  if (sigma <= 0.0) return {};
  const double thr = cfg.threshold_sigmas * sigma;

  std::vector<DetectedSpike> spikes;
  const auto refractory_samples =
      static_cast<std::size_t>(cfg.refractory * cfg.fs);
  std::size_t i = 0;
  while (i < detection_signal.size()) {
    if (std::abs(detection_signal[i]) < thr) {
      ++i;
      continue;
    }
    // Find the local extremum within the refractory window.
    std::size_t peak = i;
    double peak_val = std::abs(band[i]);
    const std::size_t end =
        std::min(detection_signal.size(), i + std::max<std::size_t>(refractory_samples, 1));
    for (std::size_t j = i; j < end; ++j) {
      if (std::abs(band[j]) > peak_val) {
        peak_val = std::abs(band[j]);
        peak = j;
      }
    }
    DetectedSpike s;
    // Time stamps the detection instant (first threshold crossing), which
    // tracks the action potential onset; `sample`/`amplitude` describe the
    // waveform extremum inside the refractory window.
    s.sample = peak;
    s.time = static_cast<double>(i) / cfg.fs;
    s.amplitude = peak_val;
    spikes.push_back(s);
    // Re-arm only once the band signal has fallen back below threshold, so
    // a slow biphasic tail cannot re-trigger.
    i = end;
    while (i < detection_signal.size() &&
           std::abs(detection_signal[i]) >= thr) {
      ++i;
    }
  }
  return spikes;
}

double DetectionScore::precision() const {
  const auto denom = true_positives + false_positives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
}

double DetectionScore::recall() const {
  const auto denom = true_positives + false_negatives;
  return denom == 0 ? 0.0 : static_cast<double>(true_positives) / denom;
}

double DetectionScore::f1() const {
  const double p = precision();
  const double r = recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

DetectionScore score_detections(const std::vector<DetectedSpike>& detections,
                                const std::vector<double>& truth, double tol) {
  DetectionScore score;
  std::vector<bool> used(truth.size(), false);
  for (const auto& d : detections) {
    bool matched = false;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if (!used[i] && std::abs(truth[i] - d.time) <= tol) {
        used[i] = true;
        matched = true;
        break;
      }
    }
    if (matched) {
      ++score.true_positives;
    } else {
      ++score.false_positives;
    }
  }
  for (bool u : used) {
    if (!u) ++score.false_negatives;
  }
  return score;
}

double snr_db(std::span<const double> recorded, std::span<const double> truth) {
  require(recorded.size() == truth.size() && !recorded.empty(),
          "snr_db: size mismatch");
  double p_sig = 0.0;
  double p_err = 0.0;
  for (std::size_t i = 0; i < recorded.size(); ++i) {
    p_sig += truth[i] * truth[i];
    const double e = recorded[i] - truth[i];
    p_err += e * e;
  }
  // Clamp the degenerate cases (all-zero truth, perfect reconstruction) to
  // finite sentinels so aggregates over many pixels stay meaningful.
  if (p_err <= 0.0) return 300.0;
  if (p_sig <= 0.0) return -300.0;
  return 10.0 * std::log10(p_sig / p_err);
}

}  // namespace biosense::dsp
