// Frame-stack (movie) utilities for array recordings: per-pixel traces,
// temporal background subtraction and activity maps. The off-chip software
// layer every array recording system ships with.
#pragma once

#include <cstddef>
#include <vector>

#include "common/stream.hpp"
#include "neurochip/array.hpp"

namespace biosense::dsp {

class FrameStack final : public StreamSink<neurochip::NeuroFrame> {
 public:
  /// Empty stack to be filled as a `StreamSink` — hand it to
  /// `ChipSession::run` / `record_stream` and query once the run returns.
  FrameStack() = default;
  explicit FrameStack(std::vector<neurochip::NeuroFrame> frames);

  /// StreamSink: copies the streamed frame into the stack (the referenced
  /// frame is pooled and recycled after this returns). Geometry is checked
  /// against the first frame seen.
  void on_item(const neurochip::NeuroFrame& frame) override;
  void on_end() override {}

  std::size_t size() const { return frames_.size(); }
  int rows() const { return rows_; }
  int cols() const { return cols_; }
  double frame_rate() const;

  /// Temporal trace of one pixel across all frames.
  std::vector<double> pixel_trace(int r, int c) const;

  /// Per-pixel temporal mean (the fixed-pattern/background image).
  std::vector<double> temporal_mean() const;

  /// Per-pixel temporal standard deviation — the activity map (active
  /// pixels fluctuate, quiet ones show only noise).
  std::vector<double> temporal_stddev() const;

  /// Background-subtracted trace: pixel trace minus its temporal mean.
  std::vector<double> pixel_trace_ac(int r, int c) const;

  /// Indices (row-major) of the `k` most active pixels by temporal stddev.
  std::vector<std::size_t> most_active(std::size_t k) const;

  const neurochip::NeuroFrame& frame(std::size_t i) const { return frames_[i]; }

 private:
  std::vector<neurochip::NeuroFrame> frames_;
  int rows_ = 0;
  int cols_ = 0;
};

}  // namespace biosense::dsp
