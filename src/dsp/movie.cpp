#include "dsp/movie.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace biosense::dsp {

FrameStack::FrameStack(std::vector<neurochip::NeuroFrame> frames)
    : frames_(std::move(frames)) {
  require(!frames_.empty(), "FrameStack: need at least one frame");
  rows_ = frames_.front().rows;
  cols_ = frames_.front().cols;
  for (const auto& f : frames_) {
    require(f.rows == rows_ && f.cols == cols_,
            "FrameStack: inconsistent frame geometry");
  }
}

void FrameStack::on_item(const neurochip::NeuroFrame& frame) {
  if (frames_.empty()) {
    rows_ = frame.rows;
    cols_ = frame.cols;
  }
  require(frame.rows == rows_ && frame.cols == cols_,
          "FrameStack: inconsistent frame geometry");
  frames_.push_back(frame);
}

double FrameStack::frame_rate() const {
  if (frames_.size() < 2) return 0.0;
  const double dt = frames_[1].t - frames_[0].t;
  return dt > 0.0 ? 1.0 / dt : 0.0;
}

std::vector<double> FrameStack::pixel_trace(int r, int c) const {
  require(r >= 0 && r < rows_ && c >= 0 && c < cols_,
          "FrameStack: pixel out of range");
  std::vector<double> out;
  out.reserve(frames_.size());
  for (const auto& f : frames_) out.push_back(f.at(r, c));
  return out;
}

std::vector<double> FrameStack::temporal_mean() const {
  require(!frames_.empty(), "FrameStack: need at least one frame");
  const std::size_t n = static_cast<std::size_t>(rows_ * cols_);
  std::vector<double> mean(n, 0.0);
  for (const auto& f : frames_) {
    for (std::size_t i = 0; i < n; ++i) mean[i] += f.v_in[i];
  }
  for (auto& m : mean) m /= static_cast<double>(frames_.size());
  return mean;
}

std::vector<double> FrameStack::temporal_stddev() const {
  const std::size_t n = static_cast<std::size_t>(rows_ * cols_);
  const auto mean = temporal_mean();
  std::vector<double> var(n, 0.0);
  for (const auto& f : frames_) {
    for (std::size_t i = 0; i < n; ++i) {
      const double d = f.v_in[i] - mean[i];
      var[i] += d * d;
    }
  }
  for (auto& v : var) {
    v = std::sqrt(v / static_cast<double>(frames_.size()));
  }
  return var;
}

std::vector<double> FrameStack::pixel_trace_ac(int r, int c) const {
  auto trace = pixel_trace(r, c);
  double mean = 0.0;
  for (double v : trace) mean += v;
  mean /= static_cast<double>(trace.size());
  for (auto& v : trace) v -= mean;
  return trace;
}

std::vector<std::size_t> FrameStack::most_active(std::size_t k) const {
  const auto sd = temporal_stddev();
  std::vector<std::size_t> idx(sd.size());
  std::iota(idx.begin(), idx.end(), 0);
  const std::size_t kk = std::min(k, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<long>(kk),
                    idx.end(),
                    [&](std::size_t a, std::size_t b) { return sd[a] > sd[b]; });
  idx.resize(kk);
  return idx;
}

}  // namespace biosense::dsp
