#include "dsp/filters.hpp"

#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::dsp {

Biquad::Biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

namespace {

void check_freq(double f, double fs) {
  require(f > 0.0 && f < fs / 2.0,
          "Biquad: cutoff must be in (0, Nyquist)");
}

}  // namespace

Biquad Biquad::lowpass(double f_cut, double fs, double q) {
  check_freq(f_cut, fs);
  const double w0 = 2.0 * constants::kPi * f_cut / fs;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return Biquad((1.0 - cw) / 2.0 / a0, (1.0 - cw) / a0, (1.0 - cw) / 2.0 / a0,
                -2.0 * cw / a0, (1.0 - alpha) / a0);
}

Biquad Biquad::highpass(double f_cut, double fs, double q) {
  check_freq(f_cut, fs);
  const double w0 = 2.0 * constants::kPi * f_cut / fs;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return Biquad((1.0 + cw) / 2.0 / a0, -(1.0 + cw) / a0, (1.0 + cw) / 2.0 / a0,
                -2.0 * cw / a0, (1.0 - alpha) / a0);
}

Biquad Biquad::bandpass(double f_center, double fs, double q) {
  check_freq(f_center, fs);
  const double w0 = 2.0 * constants::kPi * f_center / fs;
  const double alpha = std::sin(w0) / (2.0 * q);
  const double cw = std::cos(w0);
  const double a0 = 1.0 + alpha;
  return Biquad(alpha / a0, 0.0, -alpha / a0, -2.0 * cw / a0,
                (1.0 - alpha) / a0);
}

double Biquad::process(double x) {
  const double y = b0_ * x + z1_;
  z1_ = b1_ * x - a1_ * y + z2_;
  z2_ = b2_ * x - a2_ * y;
  return y;
}

void Biquad::reset() { z1_ = z2_ = 0.0; }

double Biquad::magnitude(double f, double fs) const {
  const double w = 2.0 * constants::kPi * f / fs;
  const std::complex<double> z = std::polar(1.0, w);
  const auto z1 = 1.0 / z;
  const auto z2 = z1 * z1;
  const auto num = b0_ + b1_ * z1 + b2_ * z2;
  const auto den = 1.0 + a1_ * z1 + a2_ * z2;
  return std::abs(num / den);
}

BiquadCascade BiquadCascade::butterworth4_lowpass(double f_cut, double fs) {
  return BiquadCascade({Biquad::lowpass(f_cut, fs, 0.54119610),
                        Biquad::lowpass(f_cut, fs, 1.30656296)});
}

BiquadCascade BiquadCascade::butterworth4_highpass(double f_cut, double fs) {
  return BiquadCascade({Biquad::highpass(f_cut, fs, 0.54119610),
                        Biquad::highpass(f_cut, fs, 1.30656296)});
}

BiquadCascade BiquadCascade::bandpass(double f_lo, double f_hi, double fs) {
  require(f_hi > f_lo, "BiquadCascade::bandpass: inverted band");
  auto hp = butterworth4_highpass(f_lo, fs);
  auto lp = butterworth4_lowpass(f_hi, fs);
  std::vector<Biquad> all;
  all.reserve(4);
  for (auto& s : hp.sections_) all.push_back(s);
  for (auto& s : lp.sections_) all.push_back(s);
  return BiquadCascade(std::move(all));
}

double BiquadCascade::process(double x) {
  for (auto& s : sections_) x = s.process(x);
  return x;
}

void BiquadCascade::reset() {
  for (auto& s : sections_) s.reset();
}

std::vector<double> BiquadCascade::filter(std::span<const double> in) {
  reset();
  std::vector<double> out;
  out.reserve(in.size());
  for (double x : in) out.push_back(process(x));
  return out;
}

double BiquadCascade::magnitude(double f, double fs) const {
  double m = 1.0;
  for (const auto& s : sections_) m *= s.magnitude(f, fs);
  return m;
}

std::vector<double> design_fir_lowpass(double f_cut, double fs,
                                       std::size_t taps) {
  require(taps >= 3 && taps % 2 == 1, "design_fir_lowpass: taps must be odd >= 3");
  check_freq(f_cut, fs);
  const double fc = f_cut / fs;  // normalized
  const auto m = static_cast<double>(taps - 1);
  std::vector<double> h(taps);
  double sum = 0.0;
  for (std::size_t i = 0; i < taps; ++i) {
    const double n = static_cast<double>(i) - m / 2.0;
    const double sinc = n == 0.0 ? 2.0 * fc
                                 : std::sin(2.0 * constants::kPi * fc * n) /
                                       (constants::kPi * n);
    const double hamming =
        0.54 - 0.46 * std::cos(2.0 * constants::kPi * static_cast<double>(i) / m);
    h[i] = sinc * hamming;
    sum += h[i];
  }
  for (auto& x : h) x /= sum;  // unity DC gain
  return h;
}

std::vector<double> fir_filter(std::span<const double> in,
                               std::span<const double> taps) {
  std::vector<double> out(in.size(), 0.0);
  const std::size_t half = taps.size() / 2;
  for (std::size_t i = 0; i < in.size(); ++i) {
    double acc = 0.0;
    for (std::size_t k = 0; k < taps.size(); ++k) {
      const auto j = static_cast<std::ptrdiff_t>(i + k) -
                     static_cast<std::ptrdiff_t>(half);
      if (j < 0 || j >= static_cast<std::ptrdiff_t>(in.size())) continue;
      acc += taps[taps.size() - 1 - k] * in[static_cast<std::size_t>(j)];
    }
    out[i] = acc;
  }
  return out;
}

}  // namespace biosense::dsp
