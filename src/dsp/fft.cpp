#include "dsp/fft.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::dsp {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

void fft_core(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  require(is_pow2(n), "fft: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        2.0 * constants::kPi / static_cast<double>(len) * (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const auto u = a[i + k];
        const auto v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : a) x /= static_cast<double>(n);
  }
}

}  // namespace

void fft(std::vector<std::complex<double>>& data) { fft_core(data, false); }
void ifft(std::vector<std::complex<double>>& data) { fft_core(data, true); }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

PsdEstimate welch_psd(std::span<const double> signal, double fs,
                      std::size_t segment) {
  require(is_pow2(segment), "welch_psd: segment must be a power of two");
  require(signal.size() >= segment, "welch_psd: signal shorter than segment");
  require(fs > 0.0, "welch_psd: fs must be positive");

  // Hann window and its power normalization.
  std::vector<double> window(segment);
  double win_power = 0.0;
  for (std::size_t i = 0; i < segment; ++i) {
    window[i] = 0.5 * (1.0 - std::cos(2.0 * constants::kPi *
                                      static_cast<double>(i) /
                                      static_cast<double>(segment - 1)));
    win_power += window[i] * window[i];
  }

  const std::size_t hop = segment / 2;
  const std::size_t n_segments = (signal.size() - segment) / hop + 1;

  std::vector<double> acc(segment / 2 + 1, 0.0);
  std::vector<std::complex<double>> buf(segment);
  for (std::size_t s = 0; s < n_segments; ++s) {
    const std::size_t off = s * hop;
    for (std::size_t i = 0; i < segment; ++i) {
      buf[i] = signal[off + i] * window[i];
    }
    fft(buf);
    for (std::size_t k = 0; k <= segment / 2; ++k) {
      acc[k] += std::norm(buf[k]);
    }
  }

  PsdEstimate est;
  est.freq.resize(acc.size());
  est.psd.resize(acc.size());
  const double scale = 1.0 / (fs * win_power * static_cast<double>(n_segments));
  for (std::size_t k = 0; k < acc.size(); ++k) {
    est.freq[k] = static_cast<double>(k) * fs / static_cast<double>(segment);
    // One-sided: double everything except DC and Nyquist.
    const bool interior = k != 0 && k != segment / 2;
    est.psd[k] = acc[k] * scale * (interior ? 2.0 : 1.0);
  }
  return est;
}

double band_rms(const PsdEstimate& est, double f_lo, double f_hi) {
  double var = 0.0;
  for (std::size_t k = 1; k < est.freq.size(); ++k) {
    const double f0 = est.freq[k - 1];
    const double f1 = est.freq[k];
    if (f1 < f_lo || f0 > f_hi) continue;
    var += 0.5 * (est.psd[k - 1] + est.psd[k]) * (f1 - f0);
  }
  return std::sqrt(var);
}

}  // namespace biosense::dsp
