// Network-level analysis of multi-site recordings.
//
// The point of recording 16k sites in parallel (rather than a patch
// pipette) is network activity: who fires with whom, when, and how the
// population behaves. Standard first-line measures: binned population
// rate, pairwise cross-correlograms, and a synchrony index.
#pragma once

#include <cstddef>
#include <vector>

namespace biosense::dsp {

/// Population firing rate: spike counts of all trains merged into bins of
/// `bin_width` seconds over [0, duration).
std::vector<double> population_rate(
    const std::vector<std::vector<double>>& trains, double duration,
    double bin_width);

struct Correlogram {
  std::vector<double> lag;    // bin centers, s
  std::vector<double> count;  // coincidences per bin
  /// Peak lag (s) and its count.
  double peak_lag = 0.0;
  double peak_count = 0.0;
};

/// Cross-correlogram of spike train `b` relative to `a` within +/-window,
/// `bins` bins. A peak at positive lag means b tends to fire after a.
Correlogram cross_correlogram(const std::vector<double>& a,
                              const std::vector<double>& b, double window,
                              std::size_t bins);

/// Zero-lag synchrony index in [0, 1]: fraction of a-spikes with a b-spike
/// within +/-tol, symmetrized.
double synchrony_index(const std::vector<double>& a,
                       const std::vector<double>& b, double tol = 2e-3);

/// Pearson correlation of two equally-binned rate vectors.
double rate_correlation(const std::vector<double>& ra,
                        const std::vector<double>& rb);

/// Estimates a propagating wave's velocity from two recording sites:
/// distance divided by the cross-correlogram peak lag of their spike
/// trains. Returns a negative value if no usable (positive-lag) peak
/// exists — e.g. empty trains or the wave reaching site 2 first.
double estimate_wave_velocity(double x1, double y1,
                              const std::vector<double>& spikes1, double x2,
                              double y2, const std::vector<double>& spikes2,
                              double max_lag = 50e-3);

/// Plane-fit wavefront estimator: least-squares fit of arrival time
/// t(x, y) = t0 + sx x + sy y over many sites; the slowness magnitude
/// |(sx, sy)| gives the speed (v = 1/|s|) and its direction the
/// propagation direction. Far more robust than pairwise lags on noisy
/// detections. Requires >= 3 non-collinear sites; returns a negative speed
/// on degeneracy.
struct WavefrontFit {
  double speed = -1.0;        // m/s
  double direction_x = 0.0;   // unit vector of propagation
  double direction_y = 0.0;
  double rms_residual = 0.0;  // s
};

WavefrontFit fit_wavefront(const std::vector<double>& xs,
                           const std::vector<double>& ys,
                           const std::vector<double>& arrival_times);

}  // namespace biosense::dsp
