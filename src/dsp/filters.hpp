// Digital filters: biquad sections, Butterworth designs, windowed-sinc FIR.
//
// The neural recording pipeline band-passes pixel traces before spike
// detection (action potential energy is concentrated in ~0.1..3 kHz at the
// chip's 2 kHz frame rate per pixel, plus faster content on dedicated
// high-rate channels).
#pragma once

#include <span>
#include <vector>

namespace biosense::dsp {

/// Direct-form-II-transposed biquad section.
class Biquad {
 public:
  /// Coefficients normalized so a0 = 1.
  Biquad(double b0, double b1, double b2, double a1, double a2);

  static Biquad lowpass(double f_cut, double fs, double q = 0.7071);
  static Biquad highpass(double f_cut, double fs, double q = 0.7071);
  static Biquad bandpass(double f_center, double fs, double q);

  double process(double x);
  void reset();

  /// Magnitude response at frequency f.
  double magnitude(double f, double fs) const;

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double z1_ = 0.0, z2_ = 0.0;
};

/// Cascade of biquads (e.g. higher-order Butterworth).
class BiquadCascade {
 public:
  explicit BiquadCascade(std::vector<Biquad> sections)
      : sections_(std::move(sections)) {}

  /// 4th-order Butterworth low/high-pass as two cascaded biquads with the
  /// standard pole-Q values (0.5412, 1.3066).
  static BiquadCascade butterworth4_lowpass(double f_cut, double fs);
  static BiquadCascade butterworth4_highpass(double f_cut, double fs);
  /// Band-pass built as HP(f_lo) + LP(f_hi), 4th order each.
  static BiquadCascade bandpass(double f_lo, double f_hi, double fs);

  double process(double x);
  void reset();
  std::vector<double> filter(std::span<const double> in);

  double magnitude(double f, double fs) const;

 private:
  std::vector<Biquad> sections_;
};

/// Windowed-sinc (Hamming) low-pass FIR design.
std::vector<double> design_fir_lowpass(double f_cut, double fs, std::size_t taps);

/// FIR convolution (same-length output, zero-padded edges).
std::vector<double> fir_filter(std::span<const double> in,
                               std::span<const double> taps);

}  // namespace biosense::dsp
