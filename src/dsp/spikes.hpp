// Spike detection and recording quality metrics.
//
// Detection operates on a single pixel's sampled trace: band-pass, then
// either absolute-threshold crossing at k * sigma (sigma estimated robustly
// with the MAD) or the nonlinear energy operator (NEO), which emphasizes
// simultaneous amplitude and frequency content of action potentials.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace biosense::dsp {

struct SpikeDetectorConfig {
  double fs = 2000.0;          // sampling rate, Hz
  double threshold_sigmas = 4.5;
  /// Minimum spacing between detections. Should cover the full biphasic
  /// extracellular waveform (~8 ms) so one action potential is counted once.
  double refractory = 8e-3;
  bool use_neo = false;        // threshold the NEO instead of the raw trace
  double band_lo = 100.0;      // band-pass corner, Hz (0 disables HP)
  double band_hi = 0.0;        // 0 = fs * 0.45
};

struct DetectedSpike {
  std::size_t sample = 0;  // index of the waveform extremum
  double time = 0.0;       // s, detection instant (first threshold crossing)
  double amplitude = 0.0;  // peak absolute amplitude in band, same units as input
};

/// Nonlinear energy operator: psi[n] = x[n]^2 - x[n-1] x[n+1].
std::vector<double> neo(std::span<const double> x);

/// Detects spikes in one trace. Returns detections sorted by time.
std::vector<DetectedSpike> detect_spikes(std::span<const double> trace,
                                         const SpikeDetectorConfig& cfg);

/// Matches detections against ground-truth spike times within `tol`;
/// returns {true positives, false positives, false negatives}.
struct DetectionScore {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;

  double precision() const;
  double recall() const;
  double f1() const;
};

DetectionScore score_detections(const std::vector<DetectedSpike>& detections,
                                const std::vector<double>& truth,
                                double tol = 2e-3);

/// Signal-to-noise ratio of a recorded trace given the ground-truth clean
/// waveform: 10 log10( P_signal / P_error ). Both spans must be equal size.
double snr_db(std::span<const double> recorded, std::span<const double> truth);

}  // namespace biosense::dsp
