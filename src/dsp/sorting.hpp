// Spike sorting: assigning detected spikes to putative source neurons.
//
// On a high-density array (7.8 um pitch vs 10-100 um cells) one pixel can
// see several cells; conversely one cell covers many pixels. Sorting
// separates sources per pixel by waveform shape: snippets are cut around
// each detection, summarized by shape features and clustered with k-means
// (deterministic seeding), the classic first-pass pipeline.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dsp/spikes.hpp"

namespace biosense::dsp {

/// Fixed-length waveform snippet around a detection.
struct Snippet {
  std::size_t spike_index = 0;  // which detection it belongs to
  std::vector<double> samples;
};

/// Cuts `pre` samples before and `post` after each detection's extremum.
/// Detections too close to the trace edges are skipped.
std::vector<Snippet> extract_snippets(std::span<const double> trace,
                                      const std::vector<DetectedSpike>& spikes,
                                      std::size_t pre = 4, std::size_t post = 8);

/// Shape features of one snippet: {min, max, peak-to-peak width in samples,
/// energy}. Used as the clustering space (normalized per feature).
std::vector<double> snippet_features(const Snippet& s);

struct SortResult {
  std::vector<int> labels;              // cluster id per snippet
  std::vector<std::vector<double>> centroids;  // in normalized feature space
  int clusters = 0;
  double inertia = 0.0;  // sum of squared distances to assigned centroid
};

/// K-means over snippet features. Deterministic: initial centroids are the
/// feature vectors most distant from each other (greedy farthest-point).
SortResult sort_spikes(const std::vector<Snippet>& snippets, int k,
                       int iterations = 25);

/// Fraction of snippets whose label matches the majority label of their
/// ground-truth source — sorting accuracy given known provenance.
double sorting_accuracy(const SortResult& result,
                        const std::vector<int>& true_source);

}  // namespace biosense::dsp
