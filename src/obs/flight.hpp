// Flight recorder: fixed-capacity lock-free ring of structured events
// for post-mortem analysis (DESIGN.md §15).
//
// Metrics answer "how much"; the flight recorder answers "what happened
// last". Each recorder keeps the most recent `capacity` events — command
// rejections, retry storms, channel stalls, fault activations,
// checkpoint/restore marks — and can dump them as a Chrome-trace JSON
// artifact when something goes wrong, so a wedged or faulted session
// leaves a record of its final moments.
//
// Design rules (same contract as the metrics registry):
//  1. Lock-free hot path. `record` is one relaxed fetch_add to claim a
//     slot plus six relaxed/release stores; every slot field is an
//     atomic, so concurrent recording and snapshotting are race-free
//     under TSan. A reader racing a wrap-around may observe a slot mid
//     overwrite — each field is individually valid, and recorders are
//     quiesced (session lock held, or run finished) before any dump the
//     tests compare.
//  2. Determinism-safe. Recording never touches RNG streams and nothing
//     on a data path reads the ring back; event timestamps are wall
//     clock and live only in dump artifacts and the checkpoint section,
//     which no digest covers.
//  3. Zero steady-state allocation. `record` never allocates; snapshot
//     and dump do (control plane only).
//
// Event names follow the instrument-name discipline: string literals,
// lowercase dotted paths under a module's claimed prefix — enforced by
// the analyzer on the BIOSENSE_FLIGHT / BIOSENSE_FLIGHT_TO macros below.
// A capacity of 0 disables a recorder entirely (record returns on the
// first branch), which is how the fleet server keeps telemetry opt-in.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "snapshot/state_io.hpp"

namespace biosense::obs {

/// One recorded event. `name` points at a string literal (or an interned
/// copy after a checkpoint restore) and is valid for the process
/// lifetime; `a`/`b` are event-defined arguments (a command id and a
/// status, a stall count, ...).
struct FlightEvent {
  const char* name = "";
  std::uint64_t t_ns = 0;
  std::uint32_t session = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

class FlightRecorder {
 public:
  /// `capacity` is the ring size in events; 0 disables the recorder.
  explicit FlightRecorder(std::size_t capacity);

  bool enabled() const { return capacity_ != 0; }
  std::size_t capacity() const { return capacity_; }

  /// Records one event (lock-free, allocation-free; a no-op when
  /// disabled). `name` must outlive the recorder — pass a literal.
  void record(const char* name, std::uint32_t session, std::uint64_t a = 0,
              std::uint64_t b = 0);
  /// Same, with an explicit timestamp (checkpoint restore replays saved
  /// events through this).
  void record_at(const char* name, std::uint64_t t_ns, std::uint32_t session,
                 std::uint64_t a, std::uint64_t b);

  /// Events ever recorded (including those since overwritten).
  std::uint64_t recorded() const;
  /// Events lost to ring wrap-around over the recorder's lifetime
  /// (carried across checkpoint/restore).
  std::uint64_t dropped() const;

  /// The retained events, oldest first. Safe against concurrent
  /// recording; exact when the recorder is quiesced.
  std::vector<FlightEvent> events() const;

  /// Drops every retained event and zeroes the lifetime counters. Not
  /// safe against concurrent recording — tests and benches only.
  void clear();

  /// Chrome-trace JSON ("i" instant events; ts in microseconds, tid is
  /// the session id) — loadable next to span traces in Perfetto.
  void write_chrome_json(std::ostream& os) const;

  /// Writes the trace to `<results_dir()>/<label>.flight.json` and
  /// prints `artifact: <path>`. Returns the path, or "" when the
  /// recorder is disabled or the write failed.
  std::string dump(const std::string& label) const;

  /// Checkpoint hooks: the retained events plus the lifetime counters,
  /// so a restored session keeps its recent history. `load_state`
  /// interns event names (the literals of the saving process are gone).
  void save_state(snapshot::StateWriter& w) const;
  void load_state(snapshot::StateReader& r);

  /// Process-wide recorder behind BIOSENSE_FLIGHT, for library code that
  /// has no session-scoped recorder to hand.
  static FlightRecorder& global();

 private:
  struct Slot {
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> t_ns{0};
    std::atomic<std::uint32_t> session{0};
    std::atomic<std::uint64_t> a{0};
    std::atomic<std::uint64_t> b{0};
    // 1-based sequence number of the event occupying the slot; 0 while
    // never written. The release store publishes the fields above.
    std::atomic<std::uint64_t> stamp{0};
  };

  // The ring is checkpointed logically — save_state writes the retained
  // events and lifetime counters, load_state rebuilds the slots from
  // them — so the raw fields are transient to the snapshot rules.
  std::size_t capacity_;  // analyze:transient fixed at construction
  std::unique_ptr<Slot[]> slots_;  // analyze:transient rebuilt from events
  // analyze:transient re-derived from the saved event list on load
  std::atomic<std::uint64_t> head_{0};  // events recorded since clear/load
  // analyze:transient re-derived from the saved recorded-total on load
  std::atomic<std::uint64_t> base_{0};  // events predating the restored ring
};

/// Interns a dynamic event name into process-lifetime storage, returning
/// a pointer as durable as a literal. For restore paths only — hot-path
/// events use literals.
const char* intern_event_name(const std::string& name);

}  // namespace biosense::obs

// --- event-recording macros -------------------------------------------------
//
// BIOSENSE_FLIGHT records to the process-wide recorder and is compiled
// out unless -DBIOSENSE_OBS=ON, exactly like BIOSENSE_COUNT — library
// hot paths pay nothing in shipped builds. BIOSENSE_FLIGHT_TO records to
// an explicit recorder (a fleet session's ring) and is always compiled:
// the server gates it at runtime via recorder capacity, so operators get
// post-mortem rings without an instrumented rebuild. Both take the event
// name as the first argument, and it must be a string literal — the
// analyzer applies the obs naming rules to these call sites.
#if defined(BIOSENSE_OBS_ENABLED)
#define BIOSENSE_FLIGHT(name, a, b)                                          \
  ::biosense::obs::FlightRecorder::global().record(                          \
      name, 0, static_cast<std::uint64_t>(a), static_cast<std::uint64_t>(b))
#else
#define BIOSENSE_FLIGHT(name, a, b) ((void)0)
#endif

#define BIOSENSE_FLIGHT_TO(name, recorder, session, a, b)                    \
  (recorder).record(name, static_cast<std::uint32_t>(session),               \
                    static_cast<std::uint64_t>(a),                           \
                    static_cast<std::uint64_t>(b))
