// Run manifest: coarse per-phase wall time and memory bookkeeping that a
// bench persists next to its result artifacts as
// `<results>/<bench>.manifest.json`.
//
// Unlike spans and metrics (compile-gated, hot-path), the manifest is
// always compiled: it records a handful of phases per run — one clock read
// and one /proc sample at each phase boundary — so leaving it on costs
// nothing measurable and every build produces the same artifact shape for
// `tools/bench_check.py` to diff.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace biosense::obs {

/// Directory result artifacts are written to: the BIOSENSE_RESULTS_DIR
/// environment variable when set and non-empty, else "results".
std::string results_dir();

/// Current resident-set size in kB (0 where /proc is unavailable).
std::uint64_t current_rss_kb();

/// Peak resident-set size in kB (0 where /proc is unavailable).
std::uint64_t peak_rss_kb();

/// True when the tree was compiled with -DBIOSENSE_OBS=ON (spans and
/// metric macros active).
bool compiled_with_obs();

struct PhaseRecord {
  std::string name;
  double wall_s = 0.0;
  std::uint64_t rss_kb = 0;  // RSS sampled at phase end
};

/// Process-wide phase collector. Phases are appended in completion order;
/// nothing is written until `write()`.
class RunManifest {
 public:
  static RunManifest& global();

  void add_phase(std::string name, double wall_s, std::uint64_t rss_kb);

  std::vector<PhaseRecord> phases() const;
  void clear();

  /// The manifest as one JSON object: bench name, obs build flag, phases,
  /// peak RSS, and the full metrics-registry snapshot.
  std::string to_json(const std::string& bench_name) const;

  /// Writes `to_json` to `<results_dir()>/<bench_name>.manifest.json`,
  /// creating the directory if needed. Returns the path written, or an
  /// empty string on filesystem errors.
  std::string write(const std::string& bench_name) const;

 private:
  RunManifest() = default;

  mutable std::mutex mutex_;
  std::vector<PhaseRecord> phases_;
};

/// RAII phase timer: stamps the wall clock on construction and appends a
/// PhaseRecord to the global manifest on destruction. Use around each
/// top-level phase of a bench or workbench run.
class PhaseTimer {
 public:
  explicit PhaseTimer(std::string name);
  ~PhaseTimer();

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  std::string name_;
  std::uint64_t begin_ns_ = 0;
};

/// Bench bookkeeping bundle. Construct at the top of a bench `main`:
/// enables span tracing when the BIOSENSE_TRACE environment variable names
/// an output path; on destruction writes the Chrome trace there (if
/// enabled), writes the run manifest, and prints the path of every artifact
/// it produced.
class BenchRun {
 public:
  explicit BenchRun(std::string bench_name);
  ~BenchRun();

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

 private:
  std::string bench_name_;
  std::string trace_path_;  // empty = tracing not requested
};

}  // namespace biosense::obs
