// Compact wire encoding of a metrics-registry snapshot (DESIGN.md §15).
//
// `encode_snapshot` serializes an obs::MetricsSnapshot into a
// little-endian byte buffer small enough to stream over the host
// protocol's 1 KiB payload frames; `decode_snapshot` parses it back with
// the same hostility the snapshot container applies to checkpoint bytes:
// the whole buffer is CRC-8 guarded (every single-bit flip is rejected
// with a typed error), every length is validated against the remaining
// bytes before any container grows, and trailing garbage is corruption.
//
// Layout (all integers little-endian):
//
//   offset  size  field
//   0       2     magic 0x4D4F ("OM")
//   2       1     encoding version (kMetricsWireVersion)
//   3       1     CRC-8 over the whole buffer with this byte zeroed
//   4       2     name-table entry count
//   6       2     counter count
//   8       2     gauge count
//   10      2     histogram count
//   12      4     total buffer length
//   16      ...   name table, then counter / gauge / histogram sections
//
// The name table holds every instrument name — counters first, then
// gauges, then histograms, each kind in its registry (sorted) order — as
// front-coded entries `[shared u8][len u16][suffix bytes]`: `shared` is
// the byte count shared with the previous entry, so the long dotted
// prefixes instrument families share ("fleet.bench.w1.", ...) are stored
// once. Value sections then carry values only, matched to names by
// position. Counters and gauges are 8 bytes each (gauges as IEEE-754
// bit patterns, so a decode is bitwise-faithful); histograms carry
// `[bound_count u16][bounds f64...][counts u64 x bound_count+1]
// [total u64][sum f64]`.
//
// obs sits at the bottom of the library stack, so this header depends
// only on header-only cursors (snapshot/state_io.hpp) and common/crc.hpp
// — it does not link the snapshot container library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "obs/metrics.hpp"

namespace biosense::obs {

inline constexpr std::uint16_t kMetricsWireMagic = 0x4D4F;  // "OM"
inline constexpr std::uint8_t kMetricsWireVersion = 1;
inline constexpr std::size_t kMetricsWireHeader = 16;

/// Typed decode failures, mirror of snapshot::SnapshotError: corruption
/// collapses to a reason, never UB or an unbounded allocation.
enum class WireError : std::uint8_t {
  kTruncated,   // buffer shorter than the header or its declared length
  kBadMagic,    // first bytes are not a metrics snapshot
  kBadVersion,  // encoding version this decoder does not speak
  kBadCrc,      // checksum mismatch (any single-bit flip lands here)
  kBadLayout,   // CRC-valid but structurally inconsistent (or trailing bytes)
};

const char* wire_error_name(WireError e);

/// Serializes a snapshot. Counts and name lengths are bounded by the u16
/// fields; a registry large enough to overflow them is a configuration
/// error and throws (control plane — never called on a hot path).
std::vector<std::uint8_t> encode_snapshot(const MetricsSnapshot& snap);

/// Parses an encoded snapshot. The buffer must be exactly one encoding:
/// shorter is kTruncated, longer is kBadLayout.
Result<MetricsSnapshot, WireError> decode_snapshot(const std::uint8_t* bytes,
                                                   std::size_t n);

/// The decoded snapshot as one JSON object in the same shape as
/// Registry::to_json(), so reports render local and remote metrics with
/// the same code path.
std::string snapshot_to_json(const MetricsSnapshot& snap);

}  // namespace biosense::obs
