// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Design rules:
//  1. Lock-free hot path. Instruments are plain relaxed atomics; the only
//     lock in the subsystem guards *registration* (first use of a name).
//     The `BIOSENSE_COUNT`/`BIOSENSE_OBSERVE` macros cache the resolved
//     instrument in a function-local static, so a steady-state call site is
//     one guard check plus one relaxed atomic RMW.
//  2. Determinism-safe. Instruments never touch RNG streams, never branch
//     on their own values inside library code, and relaxed increments
//     commute — the snapshot totals are identical for any thread count, so
//     instrumenting the parallel capture engine cannot perturb its
//     bitwise-determinism guarantee.
//  3. Zero overhead when disabled. The instrumentation macros compile to
//     nothing unless the tree is configured with -DBIOSENSE_OBS=ON (which
//     defines BIOSENSE_OBS_ENABLED). The classes themselves are always
//     compiled so tests and tools can use the registry directly.
//
// Instruments live forever once registered: references returned by the
// registry stay valid for the life of the process (`reset()` zeroes values
// but never invalidates references, so cached call sites survive).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace biosense::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-value-wins instantaneous measurement.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations with
/// `value <= bounds[i]` (cumulative-style upper bounds, like Prometheus
/// `le`); everything above the last bound lands in the overflow bucket.
/// Bounds are frozen at registration.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  std::uint64_t bucket_count(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t total_count() const {
    return total_.load(std::memory_order_relaxed);
  }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;                     // ascending upper bounds
  std::vector<std::atomic<std::uint64_t>> counts_; // bounds_.size() + 1
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// `n` logarithmic bucket upper bounds: lo, lo*10, ..., lo*10^(n-1) — the
/// natural sizing for quantities spanning decades (the I2F converter's five).
std::vector<double> decade_buckets(double lo, int n);

/// `n` linear bucket upper bounds: lo, lo+width, ..., lo+(n-1)*width.
std::vector<double> linear_buckets(double lo, double width, int n);

/// Point-in-time value copy of one histogram (bounds + per-bucket counts;
/// `counts` has one entry per bound plus the trailing overflow bucket).
struct HistogramValue {
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  double sum = 0.0;

  bool operator==(const HistogramValue&) const = default;
};

/// Point-in-time value copy of every instrument in a registry, each kind
/// sorted by name. This is the unit the wire codec (obs/wire.hpp) encodes
/// for remote export, and what tools render into reports.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramValue>> histograms;

  bool operator==(const MetricsSnapshot&) const = default;
};

/// Process-wide instrument registry. Lookup registers on first use and is
/// mutex-protected; returned references are stable forever.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// Registers with `bounds` on first use; later calls with the same name
  /// return the existing histogram (its original bounds win).
  Histogram& histogram(const std::string& name,
                       const std::vector<double>& bounds);

  /// Reserves a unique instrument-name prefix: the first claimant of `base`
  /// gets `base` back, later claimants get `base#2`, `base#3`, ... Owners
  /// of per-instance instruments (sessions, channels, pools) claim once and
  /// derive all instrument names from the returned prefix, so hundreds of
  /// same-named instances never alias each other's gauges/counters.
  std::string claim_prefix(const std::string& base);

  /// One JSON object with every instrument, keys sorted by name:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {"name": {"buckets": [{"le": b, "count": n}, ...],
  ///                            "overflow": n, "count": N, "sum": S}}}
  std::string to_json() const;

  /// Value copy of every instrument, each kind sorted by name. Relaxed
  /// loads under the registration mutex: cheap, and safe against
  /// concurrent registration (instrument values may still be moving —
  /// a snapshot is a point-in-time observation, not a barrier).
  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument's value. References stay valid; intended for
  /// tests and for benches isolating phases.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mutex_;  // guards the maps, not the instruments
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, std::uint64_t> prefix_claims_;
};

}  // namespace biosense::obs

// --- instrumentation macros -------------------------------------------------
//
// Compiled to nothing unless the build defines BIOSENSE_OBS_ENABLED
// (cmake -DBIOSENSE_OBS=ON). Names must be string literals — each call site
// caches its instrument reference in a function-local static.
#if defined(BIOSENSE_OBS_ENABLED)

#define BIOSENSE_COUNT(name, n)                                              \
  do {                                                                       \
    static ::biosense::obs::Counter& biosense_obs_c =                        \
        ::biosense::obs::Registry::global().counter(name);                   \
    biosense_obs_c.add(static_cast<std::uint64_t>(n));                       \
  } while (0)

#define BIOSENSE_GAUGE(name, v)                                              \
  do {                                                                       \
    static ::biosense::obs::Gauge& biosense_obs_g =                          \
        ::biosense::obs::Registry::global().gauge(name);                     \
    biosense_obs_g.set(static_cast<double>(v));                              \
  } while (0)

#define BIOSENSE_OBSERVE(name, bounds, v)                                    \
  do {                                                                       \
    static ::biosense::obs::Histogram& biosense_obs_h =                      \
        ::biosense::obs::Registry::global().histogram(name, bounds);         \
    biosense_obs_h.observe(static_cast<double>(v));                          \
  } while (0)

#else

#define BIOSENSE_COUNT(name, n) ((void)0)
#define BIOSENSE_GAUGE(name, v) ((void)0)
#define BIOSENSE_OBSERVE(name, bounds, v) ((void)0)

#endif  // BIOSENSE_OBS_ENABLED
