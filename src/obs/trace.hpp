// Scoped span tracing: `BIOSENSE_SPAN("name")` records a begin/end/thread
// event into a per-thread buffer; the collected events export as Chrome
// trace-event JSON, loadable directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing.
//
// Naming note: `obs::TraceEvent` is an *execution* trace record (who ran
// what, when, on which thread). The similarly named `circuit::Trace` is a
// *waveform* recorder for transient circuit simulations — the two share
// nothing but the word.
//
// Recording is double-gated: the macro is compiled out entirely unless the
// tree is built with -DBIOSENSE_OBS=ON, and even then spans are dropped
// (one relaxed atomic load, no clock read, no allocation) until
// `Tracer::global().enable()` — benches enable it from the BIOSENSE_TRACE
// environment variable. Buffers are owned per thread; the only shared state
// is the registration list, so tracing cannot reorder or perturb the
// deterministic parallel capture paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace biosense::obs {

/// One completed span. `name` must point at storage that outlives the
/// tracer — in practice a string literal from BIOSENSE_SPAN.
struct TraceEvent {
  const char* name = "";
  std::uint64_t begin_ns = 0;  // steady-clock timestamp
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;       // small per-thread id assigned at first span
};

/// Monotonic timestamp in nanoseconds (steady clock).
std::uint64_t now_ns();

class Tracer {
 public:
  static Tracer& global();

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one completed span to the calling thread's buffer (no-op when
  /// disabled). Called by SpanGuard; usable directly for irregular spans.
  void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);

  /// Snapshot of every buffered event across all threads, ordered by begin
  /// time.
  std::vector<TraceEvent> snapshot() const;

  /// Total buffered events across all threads.
  std::size_t event_count() const;

  /// Writes the snapshot in Chrome trace-event format:
  ///   {"traceEvents": [{"name": ..., "ph": "X", "ts": <us>, "dur": <us>,
  ///                     "pid": 1, "tid": ...}, ...]}
  void write_chrome_json(std::ostream& os) const;

  /// Drops every buffered event (buffers stay registered).
  void clear();

 private:
  struct Buffer {
    mutable std::mutex mutex;  // uncontended except against snapshots
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  Tracer() = default;
  Buffer& local_buffer();

  mutable std::mutex mutex_;  // guards the buffer list
  std::vector<std::shared_ptr<Buffer>> buffers_;
  std::atomic<bool> enabled_{false};
};

/// RAII span: stamps begin on construction, records on destruction. When
/// tracing is disabled the constructor is a single relaxed load.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (Tracer::global().enabled()) {
      name_ = name;
      begin_ns_ = now_ns();
    }
  }
  ~SpanGuard() {
    if (name_ != nullptr) Tracer::global().record(name_, begin_ns_, now_ns());
  }

  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

 private:
  const char* name_ = nullptr;  // nullptr = tracing was off at entry
  std::uint64_t begin_ns_ = 0;
};

}  // namespace biosense::obs

// --- span macro -------------------------------------------------------------
//
// Compiled out entirely (no clock read, no atomic, no object) unless the
// build defines BIOSENSE_OBS_ENABLED (cmake -DBIOSENSE_OBS=ON).
#if defined(BIOSENSE_OBS_ENABLED)

#define BIOSENSE_OBS_CONCAT_INNER(a, b) a##b
#define BIOSENSE_OBS_CONCAT(a, b) BIOSENSE_OBS_CONCAT_INNER(a, b)
#define BIOSENSE_SPAN(name) \
  ::biosense::obs::SpanGuard BIOSENSE_OBS_CONCAT(biosense_span_, __LINE__)(name)

#else

#define BIOSENSE_SPAN(name) ((void)0)

#endif  // BIOSENSE_OBS_ENABLED
