#include "obs/flight.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <set>
#include <system_error>

#include "obs/manifest.hpp"
#include "obs/trace.hpp"

namespace biosense::obs {

namespace {

// Restored event names must outlive every recorder, like the literals
// they replace; the interner leaks by design (names are few and small).
std::mutex& intern_mutex() {
  static std::mutex m;
  return m;
}

std::set<std::string>& intern_table() {
  static auto* table = new std::set<std::string>();
  return *table;
}

std::string escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

constexpr std::size_t kMaxEventName = 256;
constexpr std::size_t kMaxSavedEvents = 1u << 16;

}  // namespace

const char* intern_event_name(const std::string& name) {
  std::lock_guard<std::mutex> lock(intern_mutex());
  return intern_table().insert(name).first->c_str();
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity),
      slots_(capacity == 0 ? nullptr : new Slot[capacity]) {}

void FlightRecorder::record(const char* name, std::uint32_t session,
                            std::uint64_t a, std::uint64_t b) {
  if (capacity_ == 0) return;
  record_at(name, now_ns(), session, a, b);
}

void FlightRecorder::record_at(const char* name, std::uint64_t t_ns,
                               std::uint32_t session, std::uint64_t a,
                               std::uint64_t b) {
  if (capacity_ == 0) return;
  const std::uint64_t n = head_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[n % capacity_];
  slot.name.store(name, std::memory_order_relaxed);
  slot.t_ns.store(t_ns, std::memory_order_relaxed);
  slot.session.store(session, std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.stamp.store(n + 1, std::memory_order_release);
}

std::uint64_t FlightRecorder::recorded() const {
  return base_.load(std::memory_order_relaxed) +
         head_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::dropped() const {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t kept = std::min<std::uint64_t>(head, capacity_);
  return base_.load(std::memory_order_relaxed) + head - kept;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  std::vector<FlightEvent> out;
  if (capacity_ == 0) return out;
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t kept = std::min<std::uint64_t>(head, capacity_);
  out.reserve(kept);
  for (std::uint64_t i = head - kept; i < head; ++i) {
    const Slot& slot = slots_[i % capacity_];
    if (slot.stamp.load(std::memory_order_acquire) == 0) continue;
    FlightEvent ev;
    const char* name = slot.name.load(std::memory_order_relaxed);
    ev.name = name == nullptr ? "" : name;
    ev.t_ns = slot.t_ns.load(std::memory_order_relaxed);
    ev.session = slot.session.load(std::memory_order_relaxed);
    ev.a = slot.a.load(std::memory_order_relaxed);
    ev.b = slot.b.load(std::memory_order_relaxed);
    out.push_back(ev);
  }
  return out;
}

void FlightRecorder::clear() {
  head_.store(0, std::memory_order_relaxed);
  base_.store(0, std::memory_order_relaxed);
  for (std::size_t i = 0; i < capacity_; ++i) {
    slots_[i].stamp.store(0, std::memory_order_relaxed);
  }
}

void FlightRecorder::write_chrome_json(std::ostream& os) const {
  const auto evs = events();
  os << "{\"traceEvents\": [";
  for (std::size_t i = 0; i < evs.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n  {\"name\": \"" << escape(evs[i].name)
       << "\", \"ph\": \"i\", \"s\": \"p\", \"ts\": "
       << static_cast<double>(evs[i].t_ns) / 1e3
       << ", \"pid\": 1, \"tid\": " << evs[i].session
       << ", \"args\": {\"a\": " << evs[i].a << ", \"b\": " << evs[i].b
       << "}}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\", \"flightRecorder\": {"
     << "\"recorded\": " << recorded() << ", \"dropped\": " << dropped()
     << "}}\n";
}

std::string FlightRecorder::dump(const std::string& label) const {
  if (capacity_ == 0) return {};
  const std::string dir = results_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  const std::string path = dir + "/" + label + ".flight.json";
  std::ofstream out(path);
  if (!out) return {};
  write_chrome_json(out);
  if (!out.good()) return {};
  std::cout << "artifact: " << path << "\n";
  return path;
}

void FlightRecorder::save_state(snapshot::StateWriter& w) const {
  const auto evs = events();
  w.u64(recorded());
  w.u32(static_cast<std::uint32_t>(evs.size()));
  for (const FlightEvent& ev : evs) {
    w.str(ev.name);
    w.u64(ev.t_ns);
    w.u32(ev.session);
    w.u64(ev.a);
    w.u64(ev.b);
  }
}

void FlightRecorder::load_state(snapshot::StateReader& r) {
  const std::uint64_t total = r.u64();
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxSavedEvents || count > total) {
    r.fail();
    return;
  }
  clear();
  std::string name;
  for (std::uint32_t i = 0; i < count; ++i) {
    r.str(name, kMaxEventName);
    const std::uint64_t t_ns = r.u64();
    const std::uint32_t session = r.u32();
    const std::uint64_t a = r.u64();
    const std::uint64_t b = r.u64();
    if (!r.ok()) return;
    // Replayed through the normal path: a ring smaller than the saving
    // one keeps the newest events, exactly as if it had been recording.
    record_at(intern_event_name(name), t_ns, session, a, b);
  }
  if (capacity_ != 0) {
    base_.store(total - head_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
  }
}

FlightRecorder& FlightRecorder::global() {
  // Sized for "the last few seconds of trouble" in library hot paths;
  // fleet sessions get their own rings sized by FleetLimits.
  static FlightRecorder recorder(1024);
  return recorder;
}

}  // namespace biosense::obs
