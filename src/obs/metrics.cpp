#include "obs/metrics.hpp"

#include <algorithm>
#include <sstream>

namespace biosense::obs {

namespace {

// Minimal JSON string escape; instrument names are code literals, but a
// stray quote or backslash must not corrupt the snapshot.
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;  // drop control chars
    out.push_back(c);
  }
  return out;
}

void append_double(std::ostringstream& os, double v) {
  os.precision(17);
  os << v;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  // Unsorted bounds would make bucket lookup order-dependent; sort once at
  // registration so `observe` can binary-search.
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> decade_buckets(double lo, int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(std::max(0, n)));
  double b = lo;
  for (int i = 0; i < n; ++i) {
    out.push_back(b);
    b *= 10.0;
  }
  return out;
}

std::vector<double> linear_buckets(double lo, double width, int n) {
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(std::max(0, n)));
  for (int i = 0; i < n; ++i) out.push_back(lo + i * width);
  return out;
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name,
                               const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  return histograms_.try_emplace(name, bounds).first->second;
}

std::string Registry::claim_prefix(const std::string& base) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto n = ++prefix_claims_[base];
  if (n == 1) return base;
  return base + "#" + std::to_string(n);
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << escape(name) << "\": " << c.value();
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << escape(name) << "\": ";
    append_double(os, g.value());
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << escape(name) << "\": {\"buckets\": [";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      append_double(os, h.bounds()[i]);
      os << ", \"count\": " << h.bucket_count(i) << "}";
    }
    os << "], \"overflow\": " << h.bucket_count(h.bounds().size())
       << ", \"count\": " << h.total_count() << ", \"sum\": ";
    append_double(os, h.sum());
    os << "}";
  }
  os << "}}";
  return os.str();
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c.value());
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g.value());
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramValue v;
    v.bounds = h.bounds();
    v.counts.reserve(h.bounds().size() + 1);
    for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
      v.counts.push_back(h.bucket_count(i));
    }
    v.total = h.total_count();
    v.sum = h.sum();
    snap.histograms.emplace_back(name, std::move(v));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& kv : counters_) kv.second.reset();
  for (auto& kv : gauges_) kv.second.reset();
  for (auto& kv : histograms_) kv.second.reset();
}

}  // namespace biosense::obs
