#include "obs/wire.hpp"

#include <algorithm>
#include <sstream>

#include "common/crc.hpp"
#include "common/error.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::obs {

namespace {

constexpr std::size_t kMaxNameLen = 0xffff;
constexpr std::size_t kMaxEntries = 0xffff;

std::size_t shared_prefix(const std::string& a, const std::string& b) {
  const std::size_t n = std::min({a.size(), b.size(), std::size_t{255}});
  std::size_t k = 0;
  while (k < n && a[k] == b[k]) ++k;
  return k;
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) continue;
    out.push_back(c);
  }
  return out;
}

void append_double(std::ostringstream& os, double v) {
  os.precision(17);
  os << v;
}

}  // namespace

const char* wire_error_name(WireError e) {
  switch (e) {
    case WireError::kTruncated:
      return "truncated";
    case WireError::kBadMagic:
      return "bad_magic";
    case WireError::kBadVersion:
      return "bad_version";
    case WireError::kBadCrc:
      return "bad_crc";
    case WireError::kBadLayout:
      return "bad_layout";
  }
  return "unknown";
}

std::vector<std::uint8_t> encode_snapshot(const MetricsSnapshot& snap) {
  const std::size_t names = snap.counters.size() + snap.gauges.size() +
                            snap.histograms.size();
  require(names <= kMaxEntries,
          "encode_snapshot: too many instruments for the u16 counts");
  require(snap.counters.size() <= kMaxEntries &&
              snap.gauges.size() <= kMaxEntries &&
              snap.histograms.size() <= kMaxEntries,
          "encode_snapshot: section count overflows u16");

  std::vector<std::uint8_t> out;
  snapshot::StateWriter w(out);
  w.u16(kMetricsWireMagic);
  w.u8(kMetricsWireVersion);
  w.u8(0);  // CRC slot, patched below
  w.u16(static_cast<std::uint16_t>(names));
  w.u16(static_cast<std::uint16_t>(snap.counters.size()));
  w.u16(static_cast<std::uint16_t>(snap.gauges.size()));
  w.u16(static_cast<std::uint16_t>(snap.histograms.size()));
  w.u32(0);  // total length, patched below

  // Front-coded name table: counters, gauges, histograms, in order.
  std::string prev;
  const auto put_name = [&](const std::string& name) {
    require(name.size() <= kMaxNameLen, "encode_snapshot: name too long");
    const std::size_t shared = shared_prefix(prev, name);
    w.u8(static_cast<std::uint8_t>(shared));
    w.u16(static_cast<std::uint16_t>(name.size() - shared));
    for (std::size_t i = shared; i < name.size(); ++i) {
      out.push_back(static_cast<std::uint8_t>(name[i]));
    }
    prev = name;
  };
  for (const auto& [name, value] : snap.counters) put_name(name);
  for (const auto& [name, value] : snap.gauges) put_name(name);
  for (const auto& [name, value] : snap.histograms) put_name(name);

  for (const auto& [name, value] : snap.counters) w.u64(value);
  for (const auto& [name, value] : snap.gauges) w.f64(value);
  for (const auto& [name, h] : snap.histograms) {
    require(h.bounds.size() <= kMaxEntries,
            "encode_snapshot: histogram bound count overflows u16");
    require(h.counts.size() == h.bounds.size() + 1,
            "encode_snapshot: histogram counts must be bounds + overflow");
    w.u16(static_cast<std::uint16_t>(h.bounds.size()));
    for (double b : h.bounds) w.f64(b);
    for (std::uint64_t c : h.counts) w.u64(c);
    w.u64(h.total);
    w.f64(h.sum);
  }

  const auto total = static_cast<std::uint32_t>(out.size());
  for (std::size_t i = 0; i < 4; ++i) {
    out[12 + i] = static_cast<std::uint8_t>(total >> (8 * i));
  }
  std::uint8_t crc = crc8_update(0, out.data(), 3);
  const std::uint8_t zero = 0;
  crc = crc8_update(crc, &zero, 1);
  crc = crc8_update(crc, out.data() + 4, out.size() - 4);
  out[3] = crc;
  return out;
}

Result<MetricsSnapshot, WireError> decode_snapshot(const std::uint8_t* bytes,
                                                   std::size_t n) {
  using R = Result<MetricsSnapshot, WireError>;
  if (n < kMetricsWireHeader) return R::err(WireError::kTruncated);

  snapshot::StateReader header(bytes, kMetricsWireHeader);
  const std::uint16_t magic = header.u16();
  const std::uint8_t version = header.u8();
  const std::uint8_t crc = header.u8();
  const std::uint16_t name_count = header.u16();
  const std::uint16_t counter_count = header.u16();
  const std::uint16_t gauge_count = header.u16();
  const std::uint16_t histogram_count = header.u16();
  const std::uint32_t total_len = header.u32();
  if (magic != kMetricsWireMagic) return R::err(WireError::kBadMagic);
  if (version != kMetricsWireVersion) return R::err(WireError::kBadVersion);
  if (total_len > n) return R::err(WireError::kTruncated);
  if (total_len < n || total_len < kMetricsWireHeader) {
    return R::err(WireError::kBadLayout);
  }

  std::uint8_t want = crc8_update(0, bytes, 3);
  const std::uint8_t zero = 0;
  want = crc8_update(want, &zero, 1);
  want = crc8_update(want, bytes + 4, n - 4);
  if (want != crc) return R::err(WireError::kBadCrc);

  if (static_cast<std::size_t>(counter_count) + gauge_count +
          histogram_count != name_count) {
    return R::err(WireError::kBadLayout);
  }

  snapshot::StateReader r(bytes + kMetricsWireHeader,
                          n - kMetricsWireHeader);
  std::vector<std::string> names;
  names.reserve(name_count);
  std::string prev;
  for (std::uint16_t i = 0; i < name_count; ++i) {
    const std::uint8_t shared = r.u8();
    if (!r.ok() || shared > prev.size()) return R::err(WireError::kBadLayout);
    std::string name = prev.substr(0, shared);
    std::string suffix;
    // Suffix length is validated against the remaining payload before the
    // string grows — a corrupt length cannot size an allocation.
    const std::uint16_t len = r.u16();
    if (!r.ok() || len > r.remaining()) return R::err(WireError::kBadLayout);
    suffix.resize(len);
    for (std::uint16_t k = 0; k < len; ++k) {
      suffix[k] = static_cast<char>(r.u8());
    }
    name += suffix;
    names.push_back(name);
    prev = std::move(name);
  }

  MetricsSnapshot snap;
  snap.counters.reserve(counter_count);
  snap.gauges.reserve(gauge_count);
  snap.histograms.reserve(histogram_count);
  std::size_t next_name = 0;
  for (std::uint16_t i = 0; i < counter_count; ++i) {
    snap.counters.emplace_back(names[next_name++], r.u64());
  }
  for (std::uint16_t i = 0; i < gauge_count; ++i) {
    snap.gauges.emplace_back(names[next_name++], r.f64());
  }
  for (std::uint16_t i = 0; i < histogram_count; ++i) {
    HistogramValue h;
    const std::uint16_t bound_count = r.u16();
    if (!r.ok() ||
        static_cast<std::size_t>(bound_count) * 8 > r.remaining()) {
      return R::err(WireError::kBadLayout);
    }
    h.bounds.reserve(bound_count);
    for (std::uint16_t k = 0; k < bound_count; ++k) h.bounds.push_back(r.f64());
    if (static_cast<std::size_t>(bound_count + 1) * 8 > r.remaining()) {
      return R::err(WireError::kBadLayout);
    }
    h.counts.reserve(static_cast<std::size_t>(bound_count) + 1);
    for (std::uint16_t k = 0; k <= bound_count; ++k) h.counts.push_back(r.u64());
    h.total = r.u64();
    h.sum = r.f64();
    snap.histograms.emplace_back(names[next_name++], std::move(h));
  }
  if (!r.exhausted()) return R::err(WireError::kBadLayout);
  return R::ok(std::move(snap));
}

std::string snapshot_to_json(const MetricsSnapshot& snap) {
  std::ostringstream os;
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << escape(name) << "\": " << value;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << escape(name) << "\": ";
    append_double(os, value);
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) os << ", ";
    first = false;
    os << "\"" << escape(name) << "\": {\"buckets\": [";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": ";
      append_double(os, h.bounds[i]);
      os << ", \"count\": " << h.counts[i] << "}";
    }
    os << "], \"overflow\": " << (h.counts.empty() ? 0 : h.counts.back())
       << ", \"count\": " << h.total
       << ", \"sum\": ";
    append_double(os, h.sum);
    os << "}";
  }
  os << "}}";
  return os.str();
}

}  // namespace biosense::obs
