#include "obs/manifest.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <system_error>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace biosense::obs {

std::string results_dir() {
  if (const char* env = std::getenv("BIOSENSE_RESULTS_DIR")) {
    if (env[0] != '\0') return env;
  }
  return "results";
}

namespace {

// Reads one "<key>: <n> kB" entry from /proc/self/status.
std::uint64_t proc_status_kb(const char* key) {
  std::ifstream status("/proc/self/status");
  if (!status) return 0;
  std::string line;
  const std::string prefix = std::string(key) + ":";
  while (std::getline(status, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    std::istringstream fields(line.substr(prefix.size()));
    std::uint64_t kb = 0;
    fields >> kb;
    return kb;
  }
  return 0;
}

}  // namespace

std::uint64_t current_rss_kb() { return proc_status_kb("VmRSS"); }

std::uint64_t peak_rss_kb() { return proc_status_kb("VmHWM"); }

bool compiled_with_obs() {
#if defined(BIOSENSE_OBS_ENABLED)
  return true;
#else
  return false;
#endif
}

RunManifest& RunManifest::global() {
  static RunManifest manifest;
  return manifest;
}

void RunManifest::add_phase(std::string name, double wall_s,
                            std::uint64_t rss_kb) {
  std::lock_guard<std::mutex> lock(mutex_);
  phases_.push_back(PhaseRecord{std::move(name), wall_s, rss_kb});
}

std::vector<PhaseRecord> RunManifest::phases() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return phases_;
}

void RunManifest::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  phases_.clear();
}

std::string RunManifest::to_json(const std::string& bench_name) const {
  const auto phases = this->phases();
  std::ostringstream os;
  os.precision(6);
  os << std::fixed;
  os << "{\"bench\": \"" << bench_name << "\", \"obs_enabled\": "
     << (compiled_with_obs() ? "true" : "false") << ",\n \"phases\": [";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i > 0) os << ",";
    os << "\n  {\"name\": \"" << phases[i].name
       << "\", \"wall_s\": " << phases[i].wall_s
       << ", \"rss_kb\": " << phases[i].rss_kb << "}";
  }
  os << "\n ],\n \"peak_rss_kb\": " << peak_rss_kb() << ",\n \"metrics\": "
     << Registry::global().to_json() << "}\n";
  return os.str();
}

std::string RunManifest::write(const std::string& bench_name) const {
  const std::string dir = results_dir();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return {};
  const std::string path = dir + "/" + bench_name + ".manifest.json";
  std::ofstream out(path);
  if (!out) return {};
  out << to_json(bench_name);
  return out.good() ? path : std::string{};
}

PhaseTimer::PhaseTimer(std::string name)
    : name_(std::move(name)), begin_ns_(now_ns()) {}

PhaseTimer::~PhaseTimer() {
  const double wall_s = static_cast<double>(now_ns() - begin_ns_) / 1e9;
  RunManifest::global().add_phase(std::move(name_), wall_s, current_rss_kb());
}

BenchRun::BenchRun(std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  if (const char* env = std::getenv("BIOSENSE_TRACE")) {
    if (env[0] != '\0') {
      trace_path_ = env;
      Tracer::global().enable();
      if (!compiled_with_obs()) {
        std::cout << "note: BIOSENSE_TRACE is set but this build has"
                     " observability compiled out (configure with"
                     " -DBIOSENSE_OBS=ON); the trace will be empty\n";
      }
    }
  }
}

BenchRun::~BenchRun() {
  if (!trace_path_.empty()) {
    Tracer::global().disable();
    std::ofstream out(trace_path_);
    if (out) {
      Tracer::global().write_chrome_json(out);
      std::cout << "artifact: " << trace_path_ << "\n";
    }
  }
  const std::string path = RunManifest::global().write(bench_name_);
  if (!path.empty()) std::cout << "artifact: " << path << "\n";
}

}  // namespace biosense::obs
