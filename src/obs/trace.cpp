#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <ostream>
#include <string>

namespace biosense::obs {

namespace {

// Span names are normally literals, but nothing stops a caller passing
// arbitrary text — escape for JSON.
std::string escape_json(const char* raw) {
  std::string out;
  for (const char* p = raw; *p != '\0'; ++p) {
    switch (*p) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += *p; break;
    }
  }
  return out;
}

}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

Tracer::Buffer& Tracer::local_buffer() {
  // The shared_ptr is held both thread-locally and by the tracer, so a
  // worker thread that exits (e.g. on pool resize) leaves its events
  // readable.
  thread_local std::shared_ptr<Buffer> buffer = [this] {
    auto b = std::make_shared<Buffer>();
    std::lock_guard<std::mutex> lock(mutex_);
    b->tid = static_cast<std::uint32_t>(buffers_.size());
    buffers_.push_back(b);
    return b;
  }();
  return *buffer;
}

void Tracer::record(const char* name, std::uint64_t begin_ns,
                    std::uint64_t end_ns) {
  if (!enabled()) return;
  Buffer& buf = local_buffer();
  TraceEvent ev;
  ev.name = name;
  ev.begin_ns = begin_ns;
  ev.end_ns = end_ns;
  std::lock_guard<std::mutex> lock(buf.mutex);  // uncontended fast path
  ev.tid = buf.tid;
  buf.events.push_back(ev);
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::vector<TraceEvent> out;
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->mutex);
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.begin_ns != b.begin_ns ? a.begin_ns < b.begin_ns
                                              : a.tid < b.tid;
            });
  return out;
}

std::size_t Tracer::event_count() const {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  std::size_t n = 0;
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->mutex);
    n += b->events.size();
  }
  return n;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  const auto events = snapshot();
  os << "{\"traceEvents\": [";
  os.precision(3);
  os << std::fixed;
  bool first = true;
  for (const auto& ev : events) {
    if (!first) os << ",";
    first = false;
    // Complete events ("ph": "X"): ts/dur are microseconds.
    os << "\n  {\"name\": \"" << escape_json(ev.name)
       << "\", \"cat\": \"biosense\", "
       << "\"ph\": \"X\", \"ts\": " << static_cast<double>(ev.begin_ns) / 1e3
       << ", \"dur\": " << static_cast<double>(ev.end_ns - ev.begin_ns) / 1e3
       << ", \"pid\": 1, \"tid\": " << ev.tid << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

void Tracer::clear() {
  std::vector<std::shared_ptr<Buffer>> buffers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    buffers = buffers_;
  }
  for (const auto& b : buffers) {
    std::lock_guard<std::mutex> lock(b->mutex);
    b->events.clear();
  }
}

}  // namespace biosense::obs
