#include "host/fleet_server.hpp"

#include <algorithm>
#include <cstring>
#include <iterator>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/wire.hpp"
#include "snapshot/atomic_file.hpp"
#include "snapshot/format.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::host {

namespace {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// Error-sentinel records: high bit set, low bits the ChipError code — a
/// real current/hash never collides because currents are IEEE doubles with
/// structure in the low mantissa and hashes are full-width.
inline constexpr std::uint64_t kRecordErrorBit = 0x8000000000000000ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

/// The fault worlds a create command can ask for (v2 adds the byte; v1
/// sessions always run preset 0). Deterministic per session: the plan seed
/// derives from the session seed at build time.
faults::FaultPlanConfig fault_preset(std::uint8_t preset,
                                     std::uint64_t seed) {
  faults::FaultPlanConfig plan;
  plan.seed = seed;
  switch (preset) {
    case 1:  // mildly lossy lab cable
      plan.link.bit_error_rate = 1e-4;
      plan.link.drop_prob = 0.005;
      plan.link.truncate_prob = 0.005;
      break;
    case 2:  // severe link trouble — the graceful-degradation regime
      plan.link.bit_error_rate = 1e-3;
      plan.link.drop_prob = 0.05;
      plan.link.truncate_prob = 0.05;
      plan.link.timeout_prob = 0.01;
      plan.link.burst_prob = 0.02;
      break;
    case 3:  // defective die + mild link
      plan.dna_dead_fraction = 0.05;
      plan.dna_stuck_fraction = 0.02;
      plan.neuro_dead_fraction = 0.05;
      plan.neuro_railed_fraction = 0.01;
      plan.link.bit_error_rate = 1e-4;
      break;
    default:
      break;
  }
  return plan;
}

/// Fleet session checkpoint section registry (DESIGN.md §13.2). Distinct
/// from the core session registry — a fleet checkpoint also carries the
/// create parameters (so a fresh server can rebuild the session), the
/// bounded record ring and the idempotency replay cache.
inline constexpr std::uint16_t kSecMeta = 0x0001;      // create params
inline constexpr std::uint16_t kSecCounters = 0x0002;  // progress + wire state
inline constexpr std::uint16_t kSecChip = 0x0003;      // chip evolving state
inline constexpr std::uint16_t kSecDriver = 0x0004;    // dna host/link state
inline constexpr std::uint16_t kSecRing = 0x0005;      // undelivered records
inline constexpr std::uint16_t kSecReplay = 0x0006;    // replay cache
inline constexpr std::uint16_t kSecFlight = 0x0007;    // flight-recorder ring

std::string checkpoint_name(std::uint32_t id) {
  return "s" + std::to_string(id);
}

}  // namespace

/// One live session. Guarded by `mutex`; everything below it is owned by
/// the session outright (chips, links, RNG streams, scratch buffers), so
/// sessions never contend with each other.
struct FleetServer::Session {
  std::mutex mutex;

  std::uint32_t id = 0;
  core::ChipKind kind = core::ChipKind::kNeuro;
  std::size_t pool_frames = 0;  // committed against the fleet budget

  // Create parameters, kept verbatim so a checkpoint can carry them and a
  // restore can rebuild the identical frozen die state by construction.
  std::uint16_t rows = 0;
  std::uint16_t cols = 0;
  std::uint64_t seed = 0;
  std::uint16_t ring_depth = 0;
  std::uint8_t preset = 0;

  // Replay cache: the last successfully applied mutating command. A retry
  // (same seq + command id) returns the cached response instead of
  // re-executing, which makes session mutations idempotent under lossy
  // request/response transports.
  bool has_replay = false;
  std::uint16_t replay_seq = 0;
  HostCommand replay_command = HostCommand::kPing;
  HostStatus replay_status = HostStatus::kOk;
  std::vector<std::uint8_t> replay_payload;

  // Acquisition state.
  std::uint32_t pending = 0;           // queued, not yet produced
  std::uint32_t frames_produced = 0;   // next record index
  std::uint64_t records_polled = 0;
  std::uint64_t digest = kFnvOffset;   // folds every produced record
  std::uint64_t wire_errors = 0;       // error-sentinel records
  std::unique_ptr<Channel<Record>> ring;

  // Configure knobs.
  std::uint16_t gate_code = 7;         // DNA conversion gate
  double stimulus_v = 0.0;             // neuro probe amplitude, V

  // Neuro data path: persistent wire lane + scratch frame, so a poll's
  // capture->serialize->link->decode->hash cycle allocates nothing in
  // steady state.
  core::NeuroSession neuro{};
  std::unique_ptr<core::FrameWire> wire;
  neurochip::NeuroFrame scratch{};
  Rng link_rng{0};
  std::uint16_t wire_seq = 0;
  double t = 0.0;
  double period = 0.0;
  core::WireStats wire_totals{};

  // DNA data path.
  core::DnaSession dna{};
  int site_index = 0;

  // Telemetry (v4): post-mortem event ring + health outcome counters.
  // `flight` is null when FleetLimits::flight_events is 0; the outcome
  // counters are only maintained while telemetry is on.
  std::unique_ptr<obs::FlightRecorder> flight;
  std::uint64_t commands_handled = 0;
  std::uint16_t last_command = 0;
  std::uint16_t last_status = 0;
};

FleetServer::FleetServer(FleetLimits limits)
    : limits_(std::move(limits)), server_flight_(limits_.server_flight_events) {
  require(limits_.max_sessions >= 1, "FleetServer: max_sessions must be >= 1");
  require(limits_.max_poll_records >= 1,
          "FleetServer: max_poll_records must be >= 1");
  register_handlers();
}

FleetServer::~FleetServer() {
  if (limits_.flight_auto_dump && server_flight_.enabled()) {
    server_flight_.dump("fleet.server");
  }
}

void FleetServer::register_handlers() {
  // Session-scoped commands (payload leads with the session id) run the
  // note_outcome telemetry hook after the handler; it is skipped entirely
  // — one branch — while telemetry is off.
  auto add = [this](HostCommand id, std::uint8_t min_version,
                    std::uint16_t min_payload, std::uint16_t max_payload,
                    bool mutating, bool session_scoped,
                    HostStatus (FleetServer::*fn)(const CommandContext&)) {
    CommandSpec spec;
    spec.id = id;
    spec.name = host_command_name(id);
    spec.min_version = min_version;
    spec.min_payload = min_payload;
    spec.max_payload = max_payload;
    spec.mutating = mutating;
    spec.handler = [this, fn, session_scoped](const CommandContext& ctx) {
      const HostStatus status = (this->*fn)(ctx);
      if (session_scoped && limits_.flight_events > 0) {
        note_outcome(ctx, status);
      }
      return status;
    };
    dispatcher_.register_command(std::move(spec));
  };

  add(HostCommand::kGetProtocolInfo, 1, 0, 0, false, false,
      &FleetServer::cmd_protocol_info);
  add(HostCommand::kGetCapabilities, 1, 0, 0, false, false,
      &FleetServer::cmd_capabilities);
  add(HostCommand::kPing, 1, 0, 64, false, false, &FleetServer::cmd_ping);
  add(HostCommand::kCreateSession, 1, 21, 22, true, true,
      &FleetServer::cmd_create);
  add(HostCommand::kConfigureSession, 1, 13, 13, true, true,
      &FleetServer::cmd_configure);
  add(HostCommand::kStartAcquisition, 1, 8, 8, true, true,
      &FleetServer::cmd_start);
  add(HostCommand::kPollFrames, 1, 6, 6, false, true, &FleetServer::cmd_poll);
  add(HostCommand::kDrainSession, 1, 4, 4, true, true,
      &FleetServer::cmd_drain);
  add(HostCommand::kDestroySession, 1, 4, 4, true, false,
      &FleetServer::cmd_destroy);
  add(HostCommand::kQuerySession, 1, 4, 4, false, true,
      &FleetServer::cmd_query);
  add(HostCommand::kCheckpointSession, 3, 4, 4, true, true,
      &FleetServer::cmd_checkpoint);
  add(HostCommand::kRestoreSession, 3, 4, 4, true, true,
      &FleetServer::cmd_restore);
  add(HostCommand::kServerStats, 2, 0, 0, false, false,
      &FleetServer::cmd_server_stats);
  add(HostCommand::kGetSessionHealth, 4, 4, 4, false, true,
      &FleetServer::cmd_session_health);
  add(HostCommand::kGetMetrics, 4, 6, 6, false, false,
      &FleetServer::cmd_get_metrics);
  add(HostCommand::kDumpFlightRecorder, 4, 4, 4, true, false,
      &FleetServer::cmd_dump_flight);
}

void FleetServer::note_outcome(const CommandContext& ctx, HostStatus status) {
  const auto& req = *ctx.request;
  if (req.payload_len < 4) return;  // malformed; the handler already said so
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t id = r.u32();
  const auto session = find_session(id);
  if (!session) return;
  std::lock_guard lock(session->mutex);
  Session& s = *session;
  ++s.commands_handled;
  s.last_command = static_cast<std::uint16_t>(req.header.command);
  s.last_status = static_cast<std::uint16_t>(status);
  if (status != HostStatus::kOk && s.flight) {
    BIOSENSE_FLIGHT_TO("fleet.cmd_rejected", *s.flight, s.id,
                       static_cast<std::uint16_t>(req.header.command),
                       static_cast<std::uint16_t>(status));
    if (status == HostStatus::kFault && limits_.flight_auto_dump) {
      s.flight->dump("fleet.s" + std::to_string(s.id));
    }
  }
}

HostStatus FleetServer::handle(const std::uint8_t* request, std::size_t n,
                               std::vector<std::uint8_t>& response) {
  return dispatcher_.dispatch(request, n, response);
}

std::size_t FleetServer::live_sessions() const {
  std::shared_lock lock(registry_mutex_);
  return sessions_.size();
}

std::size_t FleetServer::committed_frames() const {
  std::shared_lock lock(registry_mutex_);
  return committed_frames_;
}

std::shared_ptr<FleetServer::Session> FleetServer::find_session(
    std::uint32_t id) const {
  std::shared_lock lock(registry_mutex_);
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

std::shared_ptr<FleetServer::Session> FleetServer::build_session(
    std::uint32_t id, std::uint8_t kind_raw, std::uint16_t rows,
    std::uint16_t cols, std::uint64_t seed, std::uint16_t pool_frames,
    std::uint16_t ring_depth, std::uint8_t preset, HostStatus& status) {
  status = HostStatus::kBadPayload;
  if (id == kServerFlightScope) return nullptr;  // reserved for the server ring
  if (kind_raw > 1 || preset > 3) return nullptr;
  if (rows < 1 || rows > 512 || cols < 1 || cols > 512 ||
      static_cast<std::uint32_t>(rows) * cols > 16384) {
    return nullptr;
  }
  if (pool_frames < 1 || pool_frames > 64 || ring_depth < 1 ||
      ring_depth > 1024) {
    return nullptr;
  }
  const auto kind =
      kind_raw == 0 ? core::ChipKind::kNeuro : core::ChipKind::kDna;
  // The neural chip's 8:1 output multiplexers need whole mux groups.
  if (kind == core::ChipKind::kNeuro && rows % 8 != 0) return nullptr;

  // Build through the audited construction surface. Create/restore is
  // control plane: allocations and calibration sweeps are expected here,
  // never in the poll path.
  auto session = std::make_shared<Session>();
  session->id = id;
  session->kind = kind;
  session->pool_frames = pool_frames;
  session->rows = rows;
  session->cols = cols;
  session->seed = seed;
  session->ring_depth = ring_depth;
  session->preset = preset;
  const std::string label =
      limits_.obs_prefix.empty()
          ? std::string{}
          : limits_.obs_prefix + ".s" + std::to_string(id);
  core::SessionOptions opts;
  opts.kind(kind)
      .rows(rows)
      .cols(cols)
      .chip_seed(seed)
      .link_seed(seed ^ 0x5eedULL)
      .pool_frames(pool_frames)
      .queue_depth(ring_depth)
      .label(label);
  if (preset != 0) opts.fault_plan(fault_preset(preset, seed));

  try {
    if (kind == core::ChipKind::kNeuro) {
      session->neuro = opts.build_neuro();
      auto& chip = *session->neuro.chip;
      const auto& adc = chip.config().adc;
      const double adc_lsb = 2.0 * adc.full_scale.value() /
                             static_cast<double>(1 << adc.bits);
      const core::FrameCodec codec(adc_lsb, chip.nominal_conversion_gain());
      std::optional<faults::LinkFaultModel> link{};
      if (preset != 0) {
        const faults::FaultPlan plan(fault_preset(preset, seed));
        if (plan.link_faults().any()) link = plan.link_faults();
      }
      session->wire = std::make_unique<core::FrameWire>(
          codec, 0.0, link, dnachip::RetryPolicy{});
      session->link_rng = Rng(seed ^ 0x11aabbULL);
      session->period = (1.0 / chip.config().frame_rate).value();
      session->stimulus_v = 1e-4 * static_cast<double>(id % 7 + 1);
      session->scratch.v_in.reserve(static_cast<std::size_t>(rows) * cols);
      session->scratch.codes.reserve(static_cast<std::size_t>(rows) * cols);
    } else {
      session->dna = opts.build_dna();
    }
  } catch (const ConfigError&) {
    // A config the chip models reject (geometry, sizing) is the client's
    // problem, reported in kind — the server never dies for it.
    return nullptr;
  }
  session->ring = std::make_unique<Channel<Record>>(
      ring_depth, label.empty() ? std::string{} : label + ".ring");
  if (limits_.flight_events > 0) {
    session->flight =
        std::make_unique<obs::FlightRecorder>(limits_.flight_events);
  }
  status = HostStatus::kOk;
  return session;
}

// --- discovery / liveness ---------------------------------------------------

HostStatus FleetServer::cmd_protocol_info(const CommandContext& ctx) {
  auto& w = *ctx.response;
  w.u8(kProtocolVersionMin);
  w.u8(kProtocolVersionCurrent);
  w.u8(static_cast<std::uint8_t>(kHeaderSize));
  w.u16(static_cast<std::uint16_t>(kMaxPayload));
  w.u16(static_cast<std::uint16_t>(dispatcher_.commands().size()));
  return HostStatus::kOk;
}

HostStatus FleetServer::cmd_capabilities(const CommandContext& ctx) {
  ctx.response->u32(kCapDnaSessions | kCapNeuroSessions | kCapFaultInjection |
                    kCapReplayCache | kCapCheckpoint | kCapTelemetry);
  return HostStatus::kOk;
}

HostStatus FleetServer::cmd_ping(const CommandContext& ctx) {
  const auto& req = *ctx.request;
  if (req.payload_len > 0) {
    ctx.response->bytes(req.payload, req.payload_len);
  }
  return HostStatus::kOk;
}

// --- session lifecycle ------------------------------------------------------

HostStatus FleetServer::cmd_create(const CommandContext& ctx) {
  const auto& req = *ctx.request;
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t id = r.u32();
  const std::uint8_t kind_raw = r.u8();
  const std::uint16_t rows = r.u16();
  const std::uint16_t cols = r.u16();
  const std::uint64_t seed = r.u64();
  const std::uint16_t pool_frames = r.u16();
  const std::uint16_t ring_depth = r.u16();
  std::uint8_t preset = 0;
  if (req.header.version >= 2 && r.remaining() == 1) preset = r.u8();
  if (!r.exhausted()) return HostStatus::kBadPayload;

  std::unique_lock lock(registry_mutex_);
  if (const auto it = sessions_.find(id); it != sessions_.end()) {
    Session& s = *it->second;
    std::lock_guard session_lock(s.mutex);
    if (s.has_replay && s.replay_seq == req.header.seq &&
        s.replay_command == HostCommand::kCreateSession) {
      // Retried create whose first response was lost: echo it.
      ctx.response->bytes(s.replay_payload.data(), s.replay_payload.size());
      return s.replay_status;
    }
    return HostStatus::kDuplicateSession;
  }
  if (sessions_.size() >= limits_.max_sessions) {
    return HostStatus::kSessionLimit;
  }
  if (committed_frames_ + pool_frames > limits_.frame_budget) {
    return HostStatus::kSessionLimit;
  }

  HostStatus build_status = HostStatus::kOk;
  auto session = build_session(id, kind_raw, rows, cols, seed, pool_frames,
                               ring_depth, preset, build_status);
  if (!session) return build_status;

  committed_frames_ += pool_frames;
  tombstones_.erase(id);
  sessions_.emplace(id, session);
  BIOSENSE_COUNT("fleet.sessions_created", 1);
  BIOSENSE_GAUGE("fleet.live_sessions", sessions_.size());
  BIOSENSE_GAUGE("fleet.committed_frames", committed_frames_);
  if (session->flight) {
    BIOSENSE_FLIGHT_TO("fleet.session_created", *session->flight, id,
                       kind_raw, preset);
  }
  BIOSENSE_FLIGHT_TO("fleet.session_created", server_flight_, id, kind_raw,
                     preset);

  ctx.response->u32(id);
  std::lock_guard session_lock(session->mutex);
  session->has_replay = true;
  session->replay_seq = ctx.request->header.seq;
  session->replay_command = HostCommand::kCreateSession;
  session->replay_status = HostStatus::kOk;
  session->replay_payload.assign(ctx.response->data(),
                                 ctx.response->data() + ctx.response->size());
  return HostStatus::kOk;
}

HostStatus FleetServer::cmd_configure(const CommandContext& ctx) {
  const auto& req = *ctx.request;
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t id = r.u32();
  const std::uint8_t param = r.u8();
  const std::uint64_t value = r.u64();
  if (!r.exhausted()) return HostStatus::kBadPayload;

  const auto session = find_session(id);
  if (!session) return HostStatus::kNoSuchSession;
  std::lock_guard lock(session->mutex);
  Session& s = *session;
  if (s.has_replay && s.replay_seq == req.header.seq &&
      s.replay_command == HostCommand::kConfigureSession) {
    ctx.response->bytes(s.replay_payload.data(), s.replay_payload.size());
    return s.replay_status;
  }

  switch (param) {
    case 0:  // DNA conversion gate code
      if (s.kind != core::ChipKind::kDna) return HostStatus::kBadState;
      if (value > 15) return HostStatus::kBadPayload;
      s.gate_code = static_cast<std::uint16_t>(value);
      break;
    case 1:  // neuro probe amplitude, microvolts
      if (s.kind != core::ChipKind::kNeuro) return HostStatus::kBadState;
      if (value > 1000000) return HostStatus::kBadPayload;
      s.stimulus_v = 1e-6 * static_cast<double>(value);
      break;
    default:
      return HostStatus::kBadPayload;
  }

  s.has_replay = true;
  s.replay_seq = req.header.seq;
  s.replay_command = HostCommand::kConfigureSession;
  s.replay_status = HostStatus::kOk;
  s.replay_payload.clear();
  return HostStatus::kOk;
}

HostStatus FleetServer::cmd_start(const CommandContext& ctx) {
  const auto& req = *ctx.request;
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t id = r.u32();
  const std::uint32_t frames = r.u32();
  if (!r.exhausted() || frames == 0) return HostStatus::kBadPayload;

  const auto session = find_session(id);
  if (!session) return HostStatus::kNoSuchSession;
  std::lock_guard lock(session->mutex);
  Session& s = *session;
  if (s.has_replay && s.replay_seq == req.header.seq &&
      s.replay_command == HostCommand::kStartAcquisition) {
    ctx.response->bytes(s.replay_payload.data(), s.replay_payload.size());
    return s.replay_status;
  }

  if (frames > limits_.max_pending ||
      s.pending > limits_.max_pending - frames) {
    // Explicit backpressure: the client drains before queueing more.
    return HostStatus::kBackpressure;
  }
  s.pending += frames;

  ctx.response->u32(s.pending);
  s.has_replay = true;
  s.replay_seq = req.header.seq;
  s.replay_command = HostCommand::kStartAcquisition;
  s.replay_status = HostStatus::kOk;
  s.replay_payload.assign(ctx.response->data(),
                          ctx.response->data() + ctx.response->size());
  return HostStatus::kOk;
}

FleetServer::Record FleetServer::produce_record(Session& s) {
  Record record;
  record.index = s.frames_produced++;
  if (s.kind == core::ChipKind::kNeuro) {
    const neurochip::ConstantSource source(s.stimulus_v);
    s.neuro.chip->capture_frame_into(source, s.t, s.scratch);
    s.t += s.period;
    const auto stats =
        s.wire->process(s.scratch, s.wire_seq++, s.link_rng.fork());
    s.wire_totals += stats;
    std::uint64_t h = kFnvOffset;
    h = fnv_bytes(h, s.scratch.codes.data(),
                  s.scratch.codes.size() * sizeof(std::int32_t));
    h = fnv_bytes(h, &s.scratch.masked, sizeof(s.scratch.masked));
    record.payload = h;
  } else {
    const int cols = s.dna.chip->cols();
    const int row = s.site_index / cols;
    const int col = s.site_index % cols;
    s.site_index = (s.site_index + 1) % s.dna.chip->sites();
    const auto current = s.dna.host->acquire_site(row, col, s.gate_code);
    if (current) {
      std::memcpy(&record.payload, &*current, sizeof(record.payload));
    } else {
      // Typed degradation, not a crash: the record says which error the
      // active fault plan produced.
      record.payload =
          kRecordErrorBit | static_cast<std::uint64_t>(current.error());
      ++s.wire_errors;
      if (s.flight) {
        BIOSENSE_FLIGHT_TO("fleet.record_error", *s.flight, s.id,
                           record.index,
                           static_cast<std::uint64_t>(current.error()));
      }
    }
  }
  s.digest = fnv_bytes(s.digest, &record.payload, sizeof(record.payload));
  return record;
}

HostStatus FleetServer::cmd_poll(const CommandContext& ctx) {
  BIOSENSE_SPAN("fleet.poll");
  const auto& req = *ctx.request;
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t id = r.u32();
  std::uint16_t max_records = r.u16();
  if (!r.exhausted()) return HostStatus::kBadPayload;
  max_records = std::min(max_records, limits_.max_poll_records);

  const auto session = find_session(id);
  if (!session) return HostStatus::kNoSuchSession;
  std::lock_guard lock(session->mutex);
  Session& s = *session;

  // Top the bounded ring up from the backlog, then serve from the ring.
  // The ring is the explicit flow-control point: when it cannot absorb the
  // backlog the response says so instead of silently doing more work.
  while (s.pending > 0 && s.ring->size() < s.ring->capacity()) {
    if (!s.ring->try_push(produce_record(s))) return HostStatus::kInternal;
    --s.pending;
  }

  Record out[256];
  std::uint16_t count = 0;
  const std::uint16_t want = std::min<std::uint16_t>(
      max_records, static_cast<std::uint16_t>(std::size(out)));
  while (count < want) {
    auto record = s.ring->try_pop();
    if (!record) break;
    out[count++] = *record;
  }
  s.records_polled += count;

  // pending > 0 here means the top-up loop stopped on a full ring, not an
  // empty backlog: the bounded ring could not absorb the queued work, so
  // the response tells the client to keep polling before starting more.
  const std::uint8_t backpressure = s.pending > 0 ? 1 : 0;
  if (backpressure != 0 && s.flight) {
    BIOSENSE_FLIGHT_TO("fleet.ring_backpressure", *s.flight, s.id, s.pending,
                       s.ring->size());
  }

  auto& w = *ctx.response;
  w.u16(count);
  w.u8(backpressure);
  for (std::uint16_t i = 0; i < count; ++i) {
    w.u32(out[i].index);
    w.u64(out[i].payload);
  }
  return HostStatus::kOk;
}

HostStatus FleetServer::cmd_drain(const CommandContext& ctx) {
  BIOSENSE_SPAN("fleet.drain");
  const auto& req = *ctx.request;
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t id = r.u32();
  if (!r.exhausted()) return HostStatus::kBadPayload;

  const auto session = find_session(id);
  if (!session) return HostStatus::kNoSuchSession;
  std::lock_guard lock(session->mutex);
  Session& s = *session;
  if (s.has_replay && s.replay_seq == req.header.seq &&
      s.replay_command == HostCommand::kDrainSession) {
    ctx.response->bytes(s.replay_payload.data(), s.replay_payload.size());
    return s.replay_status;
  }

  // Finish the backlog (records fold into the digest at production) and
  // discard undelivered ring records — drain is the end-of-run barrier,
  // the digest already covers everything produced.
  while (s.pending > 0) {
    (void)produce_record(s);
    --s.pending;
  }
  while (s.ring->try_pop()) {
  }
  if (s.flight) {
    BIOSENSE_FLIGHT_TO("fleet.drain_mark", *s.flight, s.id,
                       s.frames_produced, s.wire_errors);
  }

  auto& w = *ctx.response;
  w.u32(s.frames_produced);
  w.u64(s.digest);
  w.u64(s.wire_totals.lost_words);
  w.u64(s.kind == core::ChipKind::kNeuro ? s.wire_totals.retries
                                         : s.dna.host->stats().retries);
  const double backoff = s.kind == core::ChipKind::kNeuro
                             ? s.wire_totals.backoff_s
                             : s.dna.host->stats().backoff_s;
  std::uint64_t backoff_bits = 0;
  std::memcpy(&backoff_bits, &backoff, sizeof(backoff_bits));
  w.u64(backoff_bits);

  s.has_replay = true;
  s.replay_seq = req.header.seq;
  s.replay_command = HostCommand::kDrainSession;
  s.replay_status = HostStatus::kOk;
  s.replay_payload.assign(ctx.response->data(),
                          ctx.response->data() + ctx.response->size());
  return HostStatus::kOk;
}

HostStatus FleetServer::cmd_destroy(const CommandContext& ctx) {
  const auto& req = *ctx.request;
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t id = r.u32();
  if (!r.exhausted()) return HostStatus::kBadPayload;

  std::unique_lock lock(registry_mutex_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    // Destroy is idempotent: a retry after the session is gone succeeds,
    // an id that never existed does not.
    return tombstones_.count(id) ? HostStatus::kOk
                                 : HostStatus::kNoSuchSession;
  }
  const std::shared_ptr<Session> going = it->second;
  committed_frames_ -= going->pool_frames;
  sessions_.erase(it);
  tombstones_.emplace(id, true);
  BIOSENSE_COUNT("fleet.sessions_destroyed", 1);
  BIOSENSE_GAUGE("fleet.live_sessions", sessions_.size());
  BIOSENSE_GAUGE("fleet.committed_frames", committed_frames_);
  BIOSENSE_FLIGHT_TO("fleet.session_destroyed", server_flight_, id,
                     going->frames_produced, going->wire_errors);
  if (limits_.flight_auto_dump && going->flight) {
    std::lock_guard session_lock(going->mutex);
    going->flight->dump("fleet.s" + std::to_string(id));
  }
  return HostStatus::kOk;
}

HostStatus FleetServer::cmd_query(const CommandContext& ctx) {
  const auto& req = *ctx.request;
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t id = r.u32();
  if (!r.exhausted()) return HostStatus::kBadPayload;

  const auto session = find_session(id);
  if (!session) return HostStatus::kNoSuchSession;
  std::lock_guard lock(session->mutex);
  Session& s = *session;

  const auto ring_stats = s.ring->stats();
  auto& w = *ctx.response;
  w.u8(static_cast<std::uint8_t>(s.kind));
  w.u32(s.pending);
  w.u32(s.frames_produced);
  w.u64(s.records_polled);
  w.u16(static_cast<std::uint16_t>(s.ring->size()));
  w.u64(ring_stats.pushes);
  w.u64(ring_stats.pops);
  w.u64(ring_stats.push_stalls);
  w.u64(s.wire_totals.lost_words);
  w.u64(s.kind == core::ChipKind::kNeuro ? s.wire_totals.retries
                                         : s.dna.host->stats().retries);
  w.u64(s.wire_errors);
  return HostStatus::kOk;
}

// --- checkpoint / restore ---------------------------------------------------

std::vector<std::uint8_t> FleetServer::save_session(const Session& s) const {
  snapshot::SnapshotBuilder builder;
  {
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    w.u32(s.id);
    w.u8(s.kind == core::ChipKind::kNeuro ? 0 : 1);
    w.u16(s.rows);
    w.u16(s.cols);
    w.u64(s.seed);
    w.u16(static_cast<std::uint16_t>(s.pool_frames));
    w.u16(s.ring_depth);
    w.u8(s.preset);
    builder.add_section(kSecMeta, 1, payload);
  }
  {
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    w.u32(s.pending);
    w.u32(s.frames_produced);
    w.u64(s.records_polled);
    w.u64(s.digest);
    w.u64(s.wire_errors);
    w.u16(s.gate_code);
    w.f64(s.stimulus_v);
    w.i32(s.site_index);
    w.u16(s.wire_seq);
    w.f64(s.t);
    w.rng(s.link_rng);
    w.u64(s.wire_totals.frames);
    w.u64(s.wire_totals.words);
    w.u64(s.wire_totals.bits);
    w.u64(s.wire_totals.attempts);
    w.u64(s.wire_totals.retries);
    w.u64(s.wire_totals.recovered_words);
    w.u64(s.wire_totals.lost_words);
    w.u64(s.wire_totals.incomplete_frames);
    w.f64(s.wire_totals.backoff_s);
    builder.add_section(kSecCounters, 1, payload);
  }
  {
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    if (s.kind == core::ChipKind::kNeuro) {
      s.neuro.chip->save_state(w);
    } else {
      s.dna.chip->save_state(w);
    }
    builder.add_section(kSecChip, 1, payload);
  }
  if (s.kind == core::ChipKind::kDna) {
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    s.dna.host->save_state(w);
    builder.add_section(kSecDriver, 1, payload);
  }
  {
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    s.ring->save_state(w, [](snapshot::StateWriter& sw, const Record& rec) {
      sw.u32(rec.index);
      sw.u64(rec.payload);
    });
    builder.add_section(kSecRing, 1, payload);
  }
  {
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    w.b(s.has_replay);
    w.u16(s.replay_seq);
    w.u16(static_cast<std::uint16_t>(s.replay_command));
    w.u16(static_cast<std::uint16_t>(s.replay_status));
    w.bytes(s.replay_payload);
    builder.add_section(kSecReplay, 1, payload);
  }
  if (s.flight && s.flight->enabled()) {
    // Optional section: a telemetry-off restore of a telemetry-on
    // checkpoint simply skips it (unknown sections are skipped anyway).
    std::vector<std::uint8_t> payload;
    snapshot::StateWriter w(payload);
    s.flight->save_state(w);
    builder.add_section(kSecFlight, 1, payload);
  }
  return builder.finish();
}

HostStatus FleetServer::cmd_checkpoint(const CommandContext& ctx) {
  BIOSENSE_SPAN("fleet.checkpoint");
  const auto& req = *ctx.request;
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t id = r.u32();
  if (!r.exhausted()) return HostStatus::kBadPayload;

  const auto session = find_session(id);
  if (!session) return HostStatus::kNoSuchSession;
  std::lock_guard lock(session->mutex);
  Session& s = *session;
  if (s.has_replay && s.replay_seq == req.header.seq &&
      s.replay_command == HostCommand::kCheckpointSession) {
    ctx.response->bytes(s.replay_payload.data(), s.replay_payload.size());
    return s.replay_status;
  }

  // The mark goes in before serialization so the checkpoint itself carries
  // it — a restored session's ring shows its own checkpoint history.
  if (s.flight) {
    BIOSENSE_FLIGHT_TO("fleet.checkpoint_mark", *s.flight, s.id,
                       s.frames_produced, s.pending);
  }
  BIOSENSE_FLIGHT_TO("fleet.checkpoint_mark", server_flight_, s.id,
                     s.frames_produced, s.pending);
  const std::vector<std::uint8_t> bytes = save_session(s);
  const std::uint64_t digest = fnv_bytes(kFnvOffset, bytes.data(),
                                         bytes.size());
  {
    std::lock_guard store_lock(checkpoint_mutex_);
    checkpoints_[id] = bytes;
  }
  if (!limits_.checkpoint_dir.empty()) {
    snapshot::CheckpointStore store(limits_.checkpoint_dir,
                                    checkpoint_name(id));
    if (auto saved = store.save(bytes); !saved) {
      // Disk persistence failed; the in-memory copy is still good but the
      // crash-safety contract is not met — report it, don't pretend.
      return HostStatus::kInternal;
    }
  }
  BIOSENSE_COUNT("fleet.checkpoints", 1);

  auto& w = *ctx.response;
  w.u32(static_cast<std::uint32_t>(bytes.size()));
  w.u64(digest);
  s.has_replay = true;
  s.replay_seq = req.header.seq;
  s.replay_command = HostCommand::kCheckpointSession;
  s.replay_status = HostStatus::kOk;
  s.replay_payload.assign(ctx.response->data(),
                          ctx.response->data() + ctx.response->size());
  return HostStatus::kOk;
}

HostStatus FleetServer::cmd_restore(const CommandContext& ctx) {
  BIOSENSE_SPAN("fleet.restore");
  const auto& req = *ctx.request;
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t id = r.u32();
  if (!r.exhausted()) return HostStatus::kBadPayload;

  // Fetch the checkpoint: this server's memory first, then the crash-safe
  // store (which falls back to the previous-good slot on corruption —
  // that's the dead-worker recovery path for a fresh server).
  std::vector<std::uint8_t> bytes;
  {
    std::lock_guard store_lock(checkpoint_mutex_);
    if (const auto it = checkpoints_.find(id); it != checkpoints_.end()) {
      bytes = it->second;
    }
  }
  if (bytes.empty()) {
    if (limits_.checkpoint_dir.empty()) return HostStatus::kNoSuchSession;
    snapshot::CheckpointStore store(limits_.checkpoint_dir,
                                    checkpoint_name(id));
    auto loaded = store.load();
    if (!loaded) {
      return loaded.error() == snapshot::SnapshotError::kIoError
                 ? HostStatus::kNoSuchSession
                 : HostStatus::kFault;
    }
    bytes = std::move(loaded.value());
  }

  const auto view = snapshot::SnapshotView::parse(bytes);
  if (!view) return HostStatus::kFault;

  // Meta: the create parameters the frozen die state is rebuilt from.
  const snapshot::SectionView* meta = view->find(kSecMeta);
  if (meta == nullptr) return HostStatus::kFault;
  snapshot::StateReader mr(meta->payload, meta->size);
  const std::uint32_t saved_id = mr.u32();
  const std::uint8_t kind_raw = mr.u8();
  const std::uint16_t rows = mr.u16();
  const std::uint16_t cols = mr.u16();
  const std::uint64_t seed = mr.u64();
  const std::uint16_t pool_frames = mr.u16();
  const std::uint16_t ring_depth = mr.u16();
  const std::uint8_t preset = mr.u8();
  if (!mr.exhausted() || saved_id != id) return HostStatus::kFault;

  std::unique_lock lock(registry_mutex_);
  if (const auto it = sessions_.find(id); it != sessions_.end()) {
    Session& live = *it->second;
    std::lock_guard session_lock(live.mutex);
    if (live.has_replay && live.replay_seq == req.header.seq &&
        live.replay_command == HostCommand::kRestoreSession) {
      // Retried restore whose first response was lost: echo it.
      ctx.response->bytes(live.replay_payload.data(),
                          live.replay_payload.size());
      return live.replay_status;
    }
    return HostStatus::kBadState;
  }
  if (sessions_.size() >= limits_.max_sessions) {
    return HostStatus::kSessionLimit;
  }
  if (committed_frames_ + pool_frames > limits_.frame_budget) {
    return HostStatus::kSessionLimit;
  }

  HostStatus build_status = HostStatus::kOk;
  auto session = build_session(id, kind_raw, rows, cols, seed, pool_frames,
                               ring_depth, preset, build_status);
  // Parameters straight out of a CRC-valid checkpoint failing construction
  // means the checkpoint lies about itself — typed fault, not a crash.
  if (!session) return HostStatus::kFault;
  Session& s = *session;

  const auto load = [&view](std::uint16_t section_id, auto&& fn) {
    const snapshot::SectionView* section = view->find(section_id);
    if (section == nullptr) return false;
    snapshot::StateReader sr(section->payload, section->size);
    fn(sr);
    return sr.exhausted();
  };

  const bool counters_ok = load(kSecCounters, [&s](snapshot::StateReader& sr) {
    s.pending = sr.u32();
    s.frames_produced = sr.u32();
    s.records_polled = sr.u64();
    s.digest = sr.u64();
    s.wire_errors = sr.u64();
    s.gate_code = sr.u16();
    s.stimulus_v = sr.f64();
    s.site_index = sr.i32();
    s.wire_seq = sr.u16();
    s.t = sr.f64();
    sr.rng(s.link_rng);
    s.wire_totals.frames = sr.u64();
    s.wire_totals.words = sr.u64();
    s.wire_totals.bits = sr.u64();
    s.wire_totals.attempts = sr.u64();
    s.wire_totals.retries = sr.u64();
    s.wire_totals.recovered_words = sr.u64();
    s.wire_totals.lost_words = sr.u64();
    s.wire_totals.incomplete_frames = sr.u64();
    s.wire_totals.backoff_s = sr.f64();
  });
  const bool chip_ok = load(kSecChip, [&s](snapshot::StateReader& sr) {
    if (s.kind == core::ChipKind::kNeuro) {
      s.neuro.chip->load_state(sr);
    } else {
      s.dna.chip->load_state(sr);
    }
  });
  const bool driver_ok =
      s.kind == core::ChipKind::kNeuro ||
      load(kSecDriver,
           [&s](snapshot::StateReader& sr) { s.dna.host->load_state(sr); });
  const bool ring_ok = load(kSecRing, [&s](snapshot::StateReader& sr) {
    s.ring->load_state(sr, [](snapshot::StateReader& ir) {
      Record rec;
      rec.index = ir.u32();
      rec.payload = ir.u64();
      return rec;
    });
  });
  const bool replay_ok = load(kSecReplay, [&s](snapshot::StateReader& sr) {
    s.has_replay = sr.b();
    s.replay_seq = sr.u16();
    s.replay_command = static_cast<HostCommand>(sr.u16());
    s.replay_status = static_cast<HostStatus>(sr.u16());
    sr.bytes(s.replay_payload, kMaxPayload);
  });
  // Flight history is optional (the checkpoint may predate telemetry or
  // come from a telemetry-off server) but must parse cleanly when present
  // and the restoring server has a recorder to receive it.
  bool flight_ok = true;
  if (s.flight) {
    if (const snapshot::SectionView* section = view->find(kSecFlight)) {
      snapshot::StateReader sr(section->payload, section->size);
      s.flight->load_state(sr);
      flight_ok = sr.exhausted();
    }
  }
  if (!counters_ok || !chip_ok || !driver_ok || !ring_ok || !replay_ok ||
      !flight_ok || s.site_index < 0 ||
      (s.kind == core::ChipKind::kDna &&
       s.site_index >= s.dna.chip->sites())) {
    // The discarded session never entered the registry — no cleanup.
    return HostStatus::kFault;
  }

  committed_frames_ += pool_frames;
  tombstones_.erase(id);
  sessions_.emplace(id, session);
  BIOSENSE_COUNT("fleet.sessions_restored", 1);
  BIOSENSE_GAUGE("fleet.live_sessions", sessions_.size());
  BIOSENSE_GAUGE("fleet.committed_frames", committed_frames_);
  if (s.flight) {
    BIOSENSE_FLIGHT_TO("fleet.restore_mark", *s.flight, s.id,
                       s.frames_produced, s.pending);
  }
  BIOSENSE_FLIGHT_TO("fleet.restore_mark", server_flight_, s.id,
                     s.frames_produced, s.pending);

  auto& w = *ctx.response;
  w.u32(s.frames_produced);
  w.u64(s.digest);
  std::lock_guard session_lock(s.mutex);
  s.has_replay = true;
  s.replay_seq = req.header.seq;
  s.replay_command = HostCommand::kRestoreSession;
  s.replay_status = HostStatus::kOk;
  s.replay_payload.assign(ctx.response->data(),
                          ctx.response->data() + ctx.response->size());
  return HostStatus::kOk;
}

HostStatus FleetServer::cmd_server_stats(const CommandContext& ctx) {
  std::shared_lock lock(registry_mutex_);
  auto& w = *ctx.response;
  w.u32(static_cast<std::uint32_t>(sessions_.size()));
  w.u32(static_cast<std::uint32_t>(committed_frames_));
  w.u32(static_cast<std::uint32_t>(limits_.frame_budget));
  w.u32(static_cast<std::uint32_t>(limits_.max_sessions));
  w.u32(static_cast<std::uint32_t>(tombstones_.size()));
  return HostStatus::kOk;
}

// --- telemetry (v4) ---------------------------------------------------------

HostStatus FleetServer::cmd_session_health(const CommandContext& ctx) {
  const auto& req = *ctx.request;
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t id = r.u32();
  if (!r.exhausted()) return HostStatus::kBadPayload;

  const auto session = find_session(id);
  if (!session) return HostStatus::kNoSuchSession;
  std::lock_guard lock(session->mutex);
  Session& s = *session;

  // One flat summary a monitor can poll cheaply: progress, flow control,
  // link quality and outcome tracking in a single fixed-shape response.
  // Allocation-free on the server side — monitors may poll it hot.
  const auto ring_stats = s.ring->stats();
  const std::uint64_t retries = s.kind == core::ChipKind::kNeuro
                                    ? s.wire_totals.retries
                                    : s.dna.host->stats().retries;
  const double backoff = s.kind == core::ChipKind::kNeuro
                             ? s.wire_totals.backoff_s
                             : s.dna.host->stats().backoff_s;
  std::uint64_t backoff_bits = 0;
  std::memcpy(&backoff_bits, &backoff, sizeof(backoff_bits));

  auto& w = *ctx.response;
  w.u8(static_cast<std::uint8_t>(s.kind));
  w.u16(s.last_command);
  w.u16(s.last_status);
  w.u32(s.pending);
  w.u32(s.frames_produced);
  w.u16(static_cast<std::uint16_t>(s.ring->size()));
  w.u16(static_cast<std::uint16_t>(s.ring->capacity()));
  w.u16(static_cast<std::uint16_t>(s.pool_frames));
  w.u64(s.records_polled);
  w.u64(s.commands_handled);
  w.u64(retries);
  w.u64(s.wire_totals.lost_words);
  w.u64(s.wire_errors);
  w.u64(ring_stats.push_stalls);
  w.u64(s.flight ? s.flight->recorded() : 0);
  w.u64(s.flight ? s.flight->dropped() : 0);
  w.u64(backoff_bits);
  return HostStatus::kOk;
}

HostStatus FleetServer::cmd_get_metrics(const CommandContext& ctx) {
  const auto& req = *ctx.request;
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t offset = r.u32();
  const std::uint16_t max_bytes = r.u16();
  if (!r.exhausted() || max_bytes == 0) return HostStatus::kBadPayload;

  // A registry snapshot easily exceeds one frame, so the export is
  // chunked: offset 0 re-encodes into the cache, later offsets serve the
  // cached bytes — one consistent snapshot per scan, not per chunk.
  std::lock_guard lock(metrics_mutex_);
  if (offset == 0) {
    metrics_wire_ = obs::encode_snapshot(obs::Registry::global().snapshot());
  }
  if (offset > metrics_wire_.size()) return HostStatus::kBadPayload;
  // Response room: the writer's kMaxPayload bound covers the header
  // placeholder too, minus the 8-byte total+offset preamble.
  const std::size_t room = kMaxPayload - kHeaderSize - 8;
  const std::size_t chunk =
      std::min({static_cast<std::size_t>(max_bytes), room,
                metrics_wire_.size() - offset});

  auto& w = *ctx.response;
  w.u32(static_cast<std::uint32_t>(metrics_wire_.size()));
  w.u32(offset);
  if (chunk > 0) w.bytes(metrics_wire_.data() + offset, chunk);
  return HostStatus::kOk;
}

HostStatus FleetServer::cmd_dump_flight(const CommandContext& ctx) {
  const auto& req = *ctx.request;
  PayloadReader r(req.payload, req.payload_len);
  const std::uint32_t id = r.u32();
  if (!r.exhausted()) return HostStatus::kBadPayload;

  if (id == kServerFlightScope) {
    // Server-wide ring: no session, no replay cache — dumping twice just
    // writes the artifact twice, which is naturally idempotent.
    if (!server_flight_.enabled()) return HostStatus::kBadState;
    const std::string path = server_flight_.dump("fleet.server");
    if (path.empty()) return HostStatus::kInternal;
    auto& w = *ctx.response;
    w.u32(static_cast<std::uint32_t>(server_flight_.events().size()));
    w.u64(server_flight_.recorded());
    w.u64(server_flight_.dropped());
    w.u16(static_cast<std::uint16_t>(path.size()));
    w.bytes(reinterpret_cast<const std::uint8_t*>(path.data()), path.size());
    return HostStatus::kOk;
  }

  const auto session = find_session(id);
  if (!session) return HostStatus::kNoSuchSession;
  std::lock_guard lock(session->mutex);
  Session& s = *session;
  if (s.has_replay && s.replay_seq == req.header.seq &&
      s.replay_command == HostCommand::kDumpFlightRecorder) {
    ctx.response->bytes(s.replay_payload.data(), s.replay_payload.size());
    return s.replay_status;
  }
  if (!s.flight || !s.flight->enabled()) return HostStatus::kBadState;

  const std::string path = s.flight->dump("fleet.s" + std::to_string(s.id));
  if (path.empty()) return HostStatus::kInternal;

  auto& w = *ctx.response;
  w.u32(static_cast<std::uint32_t>(s.flight->events().size()));
  w.u64(s.flight->recorded());
  w.u64(s.flight->dropped());
  w.u16(static_cast<std::uint16_t>(path.size()));
  w.bytes(reinterpret_cast<const std::uint8_t*>(path.data()), path.size());
  s.has_replay = true;
  s.replay_seq = req.header.seq;
  s.replay_command = HostCommand::kDumpFlightRecorder;
  s.replay_status = HostStatus::kOk;
  s.replay_payload.assign(ctx.response->data(),
                          ctx.response->data() + ctx.response->size());
  return HostStatus::kOk;
}

}  // namespace biosense::host
