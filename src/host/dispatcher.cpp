#include "host/dispatcher.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace biosense::host {

namespace {

std::uint16_t get_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

}  // namespace

void Dispatcher::register_command(CommandSpec spec) {
  require(static_cast<bool>(spec.handler),
          "Dispatcher: command registered without a handler");
  const auto pos = std::lower_bound(
      specs_.begin(), specs_.end(), spec.id,
      [](const CommandSpec& s, HostCommand id) { return s.id < id; });
  require(pos == specs_.end() || pos->id != spec.id,
          "Dispatcher: duplicate command id");
  specs_.insert(pos, std::move(spec));
}

const CommandSpec* Dispatcher::find(HostCommand id) const {
  const auto pos = std::lower_bound(
      specs_.begin(), specs_.end(), id,
      [](const CommandSpec& s, HostCommand want) { return s.id < want; });
  if (pos == specs_.end() || pos->id != id) return nullptr;
  return &*pos;
}

HostStatus Dispatcher::dispatch(const std::uint8_t* bytes, std::size_t n,
                                std::vector<std::uint8_t>& response) const {
  BIOSENSE_SPAN("host.dispatch");
  const auto decoded = decode_frame(bytes, n);

  FrameHeader reply;
  // Echo what the raw bytes make legible so even a reject response
  // correlates with the request the client sent.
  if (n >= kHeaderSize) {
    reply.version = std::min(bytes[1], kProtocolVersionCurrent);
    reply.command = static_cast<HostCommand>(get_le16(bytes + 2));
    reply.seq = get_le16(bytes + 4);
  }
  if (reply.version < kProtocolVersionMin) reply.version = kProtocolVersionMin;

  // The response payload builds directly behind a header placeholder in
  // the caller's buffer — no dispatcher-owned scratch, so concurrent
  // dispatches never share mutable state.
  response.clear();
  response.resize(kHeaderSize);
  PayloadWriter writer(response);

  if (!decoded) {
    reply.status = decoded.error();
  } else {
    const FrameHeader& req = decoded->header;
    reply.version = std::min(req.version, kProtocolVersionCurrent);
    reply.command = req.command;
    reply.seq = req.seq;
    if (req.version < kProtocolVersionMin ||
        req.version > kProtocolVersionCurrent) {
      // Version negotiation: tell the client the window we speak.
      reply.status = HostStatus::kBadVersion;
      writer.u8(kProtocolVersionMin);
      writer.u8(kProtocolVersionCurrent);
    } else {
      reply.status = route(*decoded, writer);
      if (reply.status != HostStatus::kOk) {
        // Typed-error responses carry no partial payload: a handler may
        // have written some bytes before failing.
        writer.rewind();
      }
    }
  }

  BIOSENSE_COUNT("host.commands", 1);
  if (reply.status != HostStatus::kOk) BIOSENSE_COUNT("host.rejects", 1);
  finalize_frame(reply, response);
  return reply.status;
}

HostStatus Dispatcher::route(const DecodedFrame& frame,
                             PayloadWriter& writer) const {
  const CommandSpec* spec = find(frame.header.command);
  if (spec == nullptr) return HostStatus::kUnknownCommand;
  // A command introduced at v(N) is "unknown" to an older conversation —
  // exactly what a v(N-1) server would have answered.
  if (frame.header.version < spec->min_version) {
    return HostStatus::kUnknownCommand;
  }
  if (frame.payload_len < spec->min_payload ||
      frame.payload_len > spec->max_payload) {
    return HostStatus::kBadPayload;
  }
  CommandContext ctx;
  ctx.request = &frame;
  ctx.response = &writer;
  return spec->handler(ctx);
}

}  // namespace biosense::host
