// Command dispatcher: the table-driven routing core of the fleet server.
//
// Commands register once at construction into a sorted registry of
// `CommandSpec`s — id, diagnostic name, minimum protocol version, declared
// payload bounds and a mutating flag — and dispatch is a binary search
// plus schema pre-checks, so adding a command never touches the routing
// logic. The dispatcher owns every protocol-level decision (magic, CRC,
// version window, unknown ids, payload bounds); handlers only see frames
// that already passed their declared schema, and only produce a status
// plus response payload bytes. The hot path allocates nothing in steady
// state: requests decode in place, responses build into caller-owned
// buffers whose capacity survives across commands.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "host/protocol.hpp"

namespace biosense::host {

/// Context handed to a handler: the decoded request plus the response
/// payload builder (response header fields are filled by the dispatcher).
struct CommandContext {
  const DecodedFrame* request = nullptr;
  PayloadWriter* response = nullptr;
};

/// One registered command. `min_payload`/`max_payload` declare the request
/// schema bounds the dispatcher enforces before the handler runs;
/// `mutating` marks session-state-changing commands (the fleet server
/// replay-caches their responses for idempotent retry).
struct CommandSpec {
  HostCommand id = HostCommand::kPing;
  const char* name = "";
  std::uint8_t min_version = kProtocolVersionMin;
  std::uint16_t min_payload = 0;
  std::uint16_t max_payload = 0;
  bool mutating = false;
  std::function<HostStatus(const CommandContext&)> handler;
};

class Dispatcher {
 public:
  /// Registers a command. Throws ConfigError on a duplicate id — two
  /// handlers for one command is a wiring bug.
  void register_command(CommandSpec spec);

  /// Full request->response cycle: decode `bytes`, route, and serialize
  /// the response frame into `response` (cleared, capacity retained).
  /// Never throws for wire-level garbage — every failure mode maps to a
  /// typed status response. Returns the response's status. Undecodable
  /// frames (bad magic/CRC/truncation) are answered with best-effort
  /// header echo (version/command/seq from the raw bytes when legible).
  ///
  /// Re-entrant and const w.r.t. the registry: concurrent dispatches with
  /// distinct `response` buffers are safe as long as the handlers
  /// themselves synchronize their shared state (the fleet server's
  /// per-session locks).
  HostStatus dispatch(const std::uint8_t* bytes, std::size_t n,
                      std::vector<std::uint8_t>& response) const;

  /// Spec lookup for discovery handlers and tests (nullptr if absent).
  const CommandSpec* find(HostCommand id) const;

  const std::vector<CommandSpec>& commands() const { return specs_; }

 private:
  HostStatus route(const DecodedFrame& frame, PayloadWriter& writer) const;

  std::vector<CommandSpec> specs_;  // sorted by id
};

}  // namespace biosense::host
