// Versioned host-command wire protocol (DESIGN.md §12).
//
// The fleet server speaks a compact binary request/response protocol
// modeled on embedded-controller host-command interfaces: every frame is a
// fixed 12-byte little-endian header followed by a bounded payload, CRC-8
// protected end to end with the same polynomial the dnachip serial link
// uses (crc8, poly 0x07). Requests and responses share the frame shape —
// a response echoes the request's command id and sequence number and
// carries the outcome in the `status` field.
//
//   offset  size  field
//        0     1  magic        0xB5
//        1     1  version      protocol version of this frame
//        2     2  command      command id (HostCommand)
//        4     2  seq          client-chosen sequence number, echoed back
//        6     2  status       HostStatus (0 in requests)
//        8     2  payload_len  bytes following the header (<= kMaxPayload)
//       10     1  reserved     0
//       11     1  crc          CRC-8 over header (crc byte zeroed) + payload
//
// Versioning rules: the server accepts any version in
// [kProtocolVersionMin, kProtocolVersionCurrent] and answers in the
// request's version. A frame with a newer version than the server speaks
// is answered with kBadVersion and a 2-byte payload [min, current] so the
// client can downgrade — version negotiation costs one round trip, total.
// Adding a command or appending payload fields bumps the minor behavior
// under the same version only when old clients are unaffected; anything a
// v(N) client would misparse bumps the version and declares the new
// surface via per-command `min_version`.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "dnachip/serial.hpp"

namespace biosense::host {

inline constexpr std::uint8_t kFrameMagic = 0xB5;
inline constexpr std::uint8_t kProtocolVersionMin = 1;
inline constexpr std::uint8_t kProtocolVersionCurrent = 4;
inline constexpr std::size_t kHeaderSize = 12;
inline constexpr std::size_t kMaxPayload = 1024;

/// Command ids. 0x0x = discovery/liveness, 0x1x = session lifecycle,
/// 0x2x = server-wide (v2+).
enum class HostCommand : std::uint16_t {
  kGetProtocolInfo = 0x01,   // -> [min u8, current u8, header u8, max_payload u16]
  kGetCapabilities = 0x02,   // -> [capability bits u32]
  kPing = 0x03,              // echoes payload (<= 64 bytes)
  kCreateSession = 0x10,     // mutating; payload: CreateSessionRequest
  kConfigureSession = 0x11,  // mutating; [session u32, param u8, value u64]
  kStartAcquisition = 0x12,  // mutating; [session u32, frames u32]
  kPollFrames = 0x13,        // [session u32, max_records u16]
  kDrainSession = 0x14,      // mutating; [session u32]
  kDestroySession = 0x15,    // mutating; [session u32]
  kQuerySession = 0x16,      // [session u32]
  kCheckpointSession = 0x17, // v3+; mutating; [session u32] -> [size u32, digest u64]
  kRestoreSession = 0x18,    // v3+; mutating; [session u32] -> [frames u32, digest u64]
  kGetSessionHealth = 0x19,  // v4+; [session u32] -> health summary
  kServerStats = 0x20,       // v2+; server-wide occupancy counters
  kGetMetrics = 0x21,        // v4+; [offset u32, max u16] -> snapshot chunk
  kDumpFlightRecorder = 0x22,// v4+; mutating; [session u32] -> dump receipt
};

/// Typed outcome of a command, carried in every response header.
enum class HostStatus : std::uint16_t {
  kOk = 0,
  kBadMagic = 1,         // not a protocol frame at all
  kBadVersion = 2,       // version outside [min, current]
  kBadCrc = 3,           // checksum rejected the frame
  kTruncated = 4,        // fewer bytes than the header promises
  kOversized = 5,        // payload_len > kMaxPayload
  kUnknownCommand = 6,   // command id not in the registry (at this version)
  kBadPayload = 7,       // payload shape violates the command's schema
  kNoSuchSession = 8,    // session id not found (or already destroyed)
  kDuplicateSession = 9, // create with an id that is already live
  kBadState = 10,        // command illegal in the session's current state
  kSessionLimit = 11,    // admission control rejected the session
  kBackpressure = 12,    // resources exhausted right now; retry after drain
  kFault = 13,           // active fault plan defeated the operation
  kInternal = 14,        // server-side invariant failure (never expected)
};

/// Stable diagnostic names ("ok", "bad_crc", ...) / ("ping", ...).
const char* host_status_name(HostStatus status);
const char* host_command_name(HostCommand command);

/// Capability bits reported by kGetCapabilities.
inline constexpr std::uint32_t kCapDnaSessions = 1u << 0;
inline constexpr std::uint32_t kCapNeuroSessions = 1u << 1;
inline constexpr std::uint32_t kCapFaultInjection = 1u << 2;
inline constexpr std::uint32_t kCapReplayCache = 1u << 3;
inline constexpr std::uint32_t kCapCheckpoint = 1u << 4;
inline constexpr std::uint32_t kCapTelemetry = 1u << 5;

/// kDumpFlightRecorder session-id sentinel addressing the server-wide
/// event ring instead of a session's (no valid session can use it: create
/// ids are arbitrary u32, but the server refuses this one at create).
inline constexpr std::uint32_t kServerFlightScope = 0xffffffffu;

/// Parsed frame header (byte-order already folded out).
struct FrameHeader {
  std::uint8_t version = kProtocolVersionCurrent;
  HostCommand command = HostCommand::kPing;
  std::uint16_t seq = 0;
  HostStatus status = HostStatus::kOk;
  std::uint16_t payload_len = 0;
};

/// A decoded frame: header plus a view into the payload bytes of the
/// buffer handed to `decode_frame` (valid only while that buffer lives).
struct DecodedFrame {
  FrameHeader header{};
  const std::uint8_t* payload = nullptr;
  std::size_t payload_len = 0;
};

/// Serializes header + payload into `out` (cleared, capacity retained) and
/// stamps the CRC. Payload may be empty. Throws ConfigError when the
/// payload exceeds kMaxPayload — producing an unsendable frame is a bug.
void encode_frame(const FrameHeader& header, const std::uint8_t* payload,
                  std::size_t payload_len, std::vector<std::uint8_t>& out);

/// In-place finalizer for the allocation-free dispatch path: `frame` holds
/// a kHeaderSize placeholder followed by the already-built payload (the
/// PayloadWriter pattern). Stamps the header fields, payload length and
/// CRC. Throws ConfigError when the payload exceeds kMaxPayload.
void finalize_frame(const FrameHeader& header, std::vector<std::uint8_t>& frame);

/// Validates magic, size, length and CRC. The error is precisely the
/// status a server should answer with (kBadMagic/kTruncated/kOversized/
/// kBadCrc). Version acceptance is left to the dispatcher — the frame of
/// a too-new client still decodes (the header layout is frozen across
/// versions by design) so the server can answer kBadVersion in kind.
Result<DecodedFrame, HostStatus> decode_frame(const std::uint8_t* bytes,
                                              std::size_t n);

/// Bounds-checked little-endian payload cursor. Reads past the end set the
/// failure flag and return zeros — handlers check `ok()` once at the end
/// of parsing instead of after every field.
class PayloadReader {
 public:
  PayloadReader(const std::uint8_t* bytes, std::size_t n)
      : bytes_(bytes), n_(n) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(take(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  std::uint64_t u64() { return take(8); }

  bool ok() const { return ok_; }
  /// True when every byte has been consumed — schemas are exact-length.
  bool exhausted() const { return ok_ && pos_ == n_; }
  std::size_t remaining() const { return n_ - pos_; }

 private:
  std::uint64_t take(std::size_t width);

  const std::uint8_t* bytes_;
  std::size_t n_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Little-endian payload builder appending to a caller-owned byte vector.
/// Bytes already in the vector at construction (e.g. a frame-header
/// placeholder) are treated as a fixed base — `size()` and the kMaxPayload
/// bound count only bytes this writer appended. Exceeding kMaxPayload
/// throws ConfigError — a handler building an oversized response is a
/// bug, not a runtime condition.
class PayloadWriter {
 public:
  explicit PayloadWriter(std::vector<std::uint8_t>& out)
      : out_(&out), base_(out.size()) {}

  void u8(std::uint8_t v) { put(v, 1); }
  void u16(std::uint16_t v) { put(v, 2); }
  void u32(std::uint32_t v) { put(v, 4); }
  void u64(std::uint64_t v) { put(v, 8); }
  void bytes(const std::uint8_t* p, std::size_t n);

  std::size_t size() const { return out_->size() - base_; }
  /// The bytes this writer appended (valid until the next append).
  const std::uint8_t* data() const { return out_->data() + base_; }
  /// Drops everything this writer appended (failed handlers must not leak
  /// partial payloads into a typed-error response).
  void rewind() { out_->resize(base_); }

 private:
  void put(std::uint64_t v, std::size_t width);

  std::vector<std::uint8_t>* out_;
  std::size_t base_;
};

}  // namespace biosense::host
