#include "host/client.hpp"

#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "obs/wire.hpp"

namespace biosense::host {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const std::uint8_t* data,
                        std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= kFnvPrime;
  }
  return h;
}

/// Wire-level statuses the client treats as transient: the *request* was
/// damaged in flight, so a retry of the same bytes can succeed. All other
/// statuses are deterministic answers and retrying would not change them.
bool transient_status(HostStatus status) {
  return status == HostStatus::kBadCrc || status == HostStatus::kTruncated ||
         status == HostStatus::kBadMagic;
}

}  // namespace

bool LossyLink::roundtrip(const std::vector<std::uint8_t>& request,
                          std::vector<std::uint8_t>& response) {
  if (rng_.uniform() < drop_request_) {
    ++drops_;
    return false;
  }
  if (corrupt_ > 0.0 && rng_.uniform() < corrupt_ && !request.empty()) {
    ++corruptions_;
    scratch_ = request;
    const auto byte = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(scratch_.size()) - 1));
    const auto bit = static_cast<unsigned>(rng_.uniform_int(0, 7));
    scratch_[byte] ^= static_cast<std::uint8_t>(1u << bit);
    if (!inner_->roundtrip(scratch_, response)) return false;
  } else if (!inner_->roundtrip(request, response)) {
    return false;
  }
  if (rng_.uniform() < drop_response_) {
    ++drops_;
    return false;
  }
  return true;
}

FleetClient::FleetClient(ByteLink& link, std::uint8_t version,
                         dnachip::RetryPolicy retry)
    : link_(&link),
      version_(version),
      retry_(retry),
      response_digest_(kFnvOffset) {
  request_.reserve(kHeaderSize + kMaxPayload);
  response_.reserve(kHeaderSize + kMaxPayload);
}

PayloadWriter FleetClient::begin_request() {
  request_.clear();
  request_.resize(kHeaderSize);
  return PayloadWriter(request_);
}

HostStatus FleetClient::transact(HostCommand command) {
  ++stats_.commands;
  const std::uint16_t seq = seq_++;
  bool downgraded = false;

  for (int attempt = 1;; ++attempt) {
    FrameHeader header;
    header.version = version_;
    header.command = command;
    header.seq = seq;
    finalize_frame(header, request_);
    ++stats_.attempts;
    if (attempt > 1) ++stats_.retries;

    HostStatus status = HostStatus::kTruncated;  // placeholder: "no reply"
    bool delivered = link_->roundtrip(request_, response_);
    if (delivered) {
      const auto decoded = decode_frame(response_.data(), response_.size());
      if (decoded && decoded->header.seq == seq) {
        status = decoded->header.status;
        if (status == HostStatus::kBadVersion && !downgraded &&
            decoded->payload_len == 2) {
          // Server told us its window: adopt the highest version both
          // sides speak and re-issue once. Not a wire retry — the seq is
          // kept, the attempt counter is not charged backoff.
          version_ = std::min<std::uint8_t>(version_, decoded->payload[1]);
          downgraded = true;
          ++stats_.downgrades;
          continue;
        }
        if (!transient_status(status)) {
          // A deterministic answer (kOk or a typed error). Fold the
          // accepted response into the determinism digest and finish.
          response_digest_ =
              fnv_bytes(response_digest_, response_.data(), response_.size());
          reply_payload_ = decoded->payload;
          reply_len_ = decoded->payload_len;
          return status;
        }
      }
      // Undecodable reply, foreign seq, or the server saw a damaged
      // request: treat as a lost exchange and retry.
    }
    if (attempt >= retry_.max_attempts) {
      reply_payload_ = nullptr;
      reply_len_ = 0;
      return delivered ? HostStatus::kBadCrc : HostStatus::kTruncated;
    }
    stats_.backoff_s += dnachip::retry_backoff(retry_, attempt);
  }
}

Result<FleetClient::ProtocolInfo, HostStatus> FleetClient::protocol_info() {
  using R = Result<ProtocolInfo, HostStatus>;
  begin_request();
  const auto status = transact(HostCommand::kGetProtocolInfo);
  if (status != HostStatus::kOk) return R::err(status);
  PayloadReader reader(reply_payload_, reply_len_);
  ProtocolInfo info;
  info.min_version = reader.u8();
  info.current_version = reader.u8();
  info.header_size = reader.u8();
  info.max_payload = reader.u16();
  info.commands = reader.u16();
  if (!reader.ok()) return R::err(HostStatus::kBadPayload);
  return info;
}

Result<std::uint32_t, HostStatus> FleetClient::capabilities() {
  using R = Result<std::uint32_t, HostStatus>;
  begin_request();
  const auto status = transact(HostCommand::kGetCapabilities);
  if (status != HostStatus::kOk) return R::err(status);
  PayloadReader reader(reply_payload_, reply_len_);
  const auto caps = reader.u32();
  if (!reader.ok()) return R::err(HostStatus::kBadPayload);
  return caps;
}

Result<void, HostStatus> FleetClient::ping(const std::uint8_t* payload,
                                           std::size_t n) {
  using R = Result<void, HostStatus>;
  auto writer = begin_request();
  if (n > 0) writer.bytes(payload, n);
  const auto status = transact(HostCommand::kPing);
  if (status != HostStatus::kOk) return R::err(status);
  if (reply_len_ != n ||
      (n > 0 && std::memcmp(reply_payload_, payload, n) != 0)) {
    return R::err(HostStatus::kInternal);
  }
  return {};
}

Result<void, HostStatus> FleetClient::create(const SessionSpec& spec) {
  using R = Result<void, HostStatus>;
  auto writer = begin_request();
  writer.u32(spec.id);
  writer.u8(static_cast<std::uint8_t>(spec.kind));
  writer.u16(spec.rows);
  writer.u16(spec.cols);
  writer.u64(spec.seed);
  writer.u16(spec.pool_frames);
  writer.u16(spec.ring_depth);
  if (version_ >= 2) {
    writer.u8(spec.fault_preset);
  } else {
    require(spec.fault_preset == 0,
            "FleetClient: fault presets need protocol v2");
  }
  const auto status = transact(HostCommand::kCreateSession);
  if (status != HostStatus::kOk) return R::err(status);
  return {};
}

Result<void, HostStatus> FleetClient::configure(std::uint32_t id,
                                                std::uint8_t param,
                                                std::uint64_t value) {
  using R = Result<void, HostStatus>;
  auto writer = begin_request();
  writer.u32(id);
  writer.u8(param);
  writer.u64(value);
  const auto status = transact(HostCommand::kConfigureSession);
  if (status != HostStatus::kOk) return R::err(status);
  return {};
}

Result<std::uint32_t, HostStatus> FleetClient::start(std::uint32_t id,
                                                     std::uint32_t frames) {
  using R = Result<std::uint32_t, HostStatus>;
  auto writer = begin_request();
  writer.u32(id);
  writer.u32(frames);
  const auto status = transact(HostCommand::kStartAcquisition);
  if (status != HostStatus::kOk) return R::err(status);
  PayloadReader reader(reply_payload_, reply_len_);
  const auto pending = reader.u32();
  if (!reader.ok()) return R::err(HostStatus::kBadPayload);
  return pending;
}

Result<FleetClient::PollResult, HostStatus> FleetClient::poll(
    std::uint32_t id, std::uint16_t max_records, std::vector<Record>& out) {
  using R = Result<PollResult, HostStatus>;
  auto writer = begin_request();
  writer.u32(id);
  writer.u16(max_records);
  const auto status = transact(HostCommand::kPollFrames);
  if (status != HostStatus::kOk) return R::err(status);
  PayloadReader reader(reply_payload_, reply_len_);
  PollResult result;
  result.returned = reader.u16();
  result.backpressure = reader.u8() != 0;
  for (std::uint16_t i = 0; i < result.returned && reader.ok(); ++i) {
    Record record;
    record.index = reader.u32();
    record.payload = reader.u64();
    out.push_back(record);
  }
  if (!reader.exhausted()) return R::err(HostStatus::kBadPayload);
  return result;
}

Result<FleetClient::DrainSummary, HostStatus> FleetClient::drain(
    std::uint32_t id) {
  using R = Result<DrainSummary, HostStatus>;
  auto writer = begin_request();
  writer.u32(id);
  const auto status = transact(HostCommand::kDrainSession);
  if (status != HostStatus::kOk) return R::err(status);
  PayloadReader reader(reply_payload_, reply_len_);
  DrainSummary summary;
  summary.frames = reader.u32();
  summary.digest = reader.u64();
  summary.lost_words = reader.u64();
  summary.retries = reader.u64();
  const auto backoff_bits = reader.u64();
  if (!reader.ok()) return R::err(HostStatus::kBadPayload);
  std::memcpy(&summary.backoff_s, &backoff_bits, sizeof(summary.backoff_s));
  return summary;
}

Result<FleetClient::SessionInfo, HostStatus> FleetClient::query(
    std::uint32_t id) {
  using R = Result<SessionInfo, HostStatus>;
  auto writer = begin_request();
  writer.u32(id);
  const auto status = transact(HostCommand::kQuerySession);
  if (status != HostStatus::kOk) return R::err(status);
  PayloadReader reader(reply_payload_, reply_len_);
  SessionInfo info;
  info.kind = reader.u8() == 0 ? core::ChipKind::kNeuro : core::ChipKind::kDna;
  info.pending = reader.u32();
  info.frames_produced = reader.u32();
  info.records_polled = reader.u64();
  info.ring_depth = reader.u16();
  info.ring_pushes = reader.u64();
  info.ring_pops = reader.u64();
  info.ring_push_stalls = reader.u64();
  info.lost_words = reader.u64();
  info.retries = reader.u64();
  info.wire_errors = reader.u64();
  if (!reader.ok()) return R::err(HostStatus::kBadPayload);
  return info;
}

Result<FleetClient::CheckpointInfo, HostStatus> FleetClient::checkpoint(
    std::uint32_t id) {
  using R = Result<CheckpointInfo, HostStatus>;
  auto writer = begin_request();
  writer.u32(id);
  const auto status = transact(HostCommand::kCheckpointSession);
  if (status != HostStatus::kOk) return R::err(status);
  PayloadReader reader(reply_payload_, reply_len_);
  CheckpointInfo info;
  info.size = reader.u32();
  info.digest = reader.u64();
  if (!reader.ok()) return R::err(HostStatus::kBadPayload);
  return info;
}

Result<FleetClient::RestoreInfo, HostStatus> FleetClient::restore(
    std::uint32_t id) {
  using R = Result<RestoreInfo, HostStatus>;
  auto writer = begin_request();
  writer.u32(id);
  const auto status = transact(HostCommand::kRestoreSession);
  if (status != HostStatus::kOk) return R::err(status);
  PayloadReader reader(reply_payload_, reply_len_);
  RestoreInfo info;
  info.frames_produced = reader.u32();
  info.digest = reader.u64();
  if (!reader.ok()) return R::err(HostStatus::kBadPayload);
  return info;
}

Result<FleetClient::HealthInfo, HostStatus> FleetClient::session_health(
    std::uint32_t id) {
  using R = Result<HealthInfo, HostStatus>;
  auto writer = begin_request();
  writer.u32(id);
  const auto status = transact(HostCommand::kGetSessionHealth);
  if (status != HostStatus::kOk) return R::err(status);
  PayloadReader reader(reply_payload_, reply_len_);
  HealthInfo info;
  info.kind = reader.u8() == 0 ? core::ChipKind::kNeuro : core::ChipKind::kDna;
  info.last_command = static_cast<HostCommand>(reader.u16());
  info.last_status = static_cast<HostStatus>(reader.u16());
  info.pending = reader.u32();
  info.frames_produced = reader.u32();
  info.ring_size = reader.u16();
  info.ring_capacity = reader.u16();
  info.pool_frames = reader.u16();
  info.records_polled = reader.u64();
  info.commands_handled = reader.u64();
  info.retries = reader.u64();
  info.lost_words = reader.u64();
  info.wire_errors = reader.u64();
  info.ring_push_stalls = reader.u64();
  info.flight_recorded = reader.u64();
  info.flight_dropped = reader.u64();
  const auto backoff_bits = reader.u64();
  if (!reader.exhausted()) return R::err(HostStatus::kBadPayload);
  std::memcpy(&info.backoff_s, &backoff_bits, sizeof(info.backoff_s));
  return info;
}

Result<obs::MetricsSnapshot, HostStatus> FleetClient::metrics() {
  using R = Result<obs::MetricsSnapshot, HostStatus>;
  // Chunked fetch: offset 0 makes the server snapshot-and-cache, later
  // offsets page through the cached encoding of that one snapshot.
  std::vector<std::uint8_t> wire;
  std::uint32_t offset = 0;
  for (;;) {
    auto writer = begin_request();
    writer.u32(offset);
    writer.u16(static_cast<std::uint16_t>(kMaxPayload));
    const auto status = transact(HostCommand::kGetMetrics);
    if (status != HostStatus::kOk) return R::err(status);
    PayloadReader reader(reply_payload_, reply_len_);
    const std::uint32_t total = reader.u32();
    const std::uint32_t echo_offset = reader.u32();
    if (!reader.ok() || echo_offset != offset) {
      return R::err(HostStatus::kBadPayload);
    }
    const std::size_t chunk = reader.remaining();
    wire.insert(wire.end(), reply_payload_ + 8, reply_payload_ + 8 + chunk);
    offset += static_cast<std::uint32_t>(chunk);
    if (offset > total || (chunk == 0 && offset < total)) {
      return R::err(HostStatus::kBadPayload);
    }
    if (offset == total) break;
  }
  auto decoded = obs::decode_snapshot(wire.data(), wire.size());
  // The frame CRC already vouched for transport integrity, so a snapshot
  // that fails its own validation is a server-side encoding bug.
  if (!decoded) return R::err(HostStatus::kInternal);
  return std::move(decoded.value());
}

Result<FleetClient::FlightDumpInfo, HostStatus>
FleetClient::dump_flight_recorder(std::uint32_t id) {
  using R = Result<FlightDumpInfo, HostStatus>;
  auto writer = begin_request();
  writer.u32(id);
  const auto status = transact(HostCommand::kDumpFlightRecorder);
  if (status != HostStatus::kOk) return R::err(status);
  PayloadReader reader(reply_payload_, reply_len_);
  FlightDumpInfo info;
  info.events = reader.u32();
  info.recorded = reader.u64();
  info.dropped = reader.u64();
  const std::uint16_t path_len = reader.u16();
  if (!reader.ok() || reader.remaining() != path_len) {
    return R::err(HostStatus::kBadPayload);
  }
  info.path.assign(
      reinterpret_cast<const char*>(reply_payload_ + (reply_len_ - path_len)),
      path_len);
  return info;
}

Result<void, HostStatus> FleetClient::destroy(std::uint32_t id) {
  using R = Result<void, HostStatus>;
  auto writer = begin_request();
  writer.u32(id);
  const auto status = transact(HostCommand::kDestroySession);
  if (status != HostStatus::kOk) return R::err(status);
  return {};
}

}  // namespace biosense::host
