// Host-side client runtime for the fleet protocol.
//
// `FleetClient` is the typed driver a lab script (or the load bench)
// uses: it builds request frames into reused buffers, moves them over a
// `ByteLink`, decodes responses and retries around transport loss with
// the same bounded-backoff discipline the chip serial stacks use
// (`dnachip::RetryPolicy`, simulated backoff — never slept). Sequence
// numbers are frozen per logical command across retries, which is what
// lets the server's replay cache make mutating commands idempotent: a
// retry of an applied-but-unacknowledged create/start/drain returns the
// cached response instead of re-executing.
//
// Version negotiation is automatic: a kBadVersion response carries the
// server's [min, current] window and the client downgrades once and
// re-issues — one extra round trip, then the conversation proceeds at the
// highest mutually spoken version.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "common/rng.hpp"
#include "host/fleet_server.hpp"
#include "host/protocol.hpp"
#include "obs/metrics.hpp"

namespace biosense::host {

/// Request/response byte transport. `roundtrip` returns false when the
/// exchange was lost (request or response dropped) — the client retries.
/// The bool is transport truth (delivered or not), not an error channel:
/// every protocol-level failure rides inside the response frame as a
/// typed `HostStatus`, which is why lint rule 7 grants this one API a
/// `lint:allow-bool` exemption.
class ByteLink {
 public:
  virtual ~ByteLink() = default;
  virtual bool roundtrip(  // lint:allow-bool
      const std::vector<std::uint8_t>& request,
      std::vector<std::uint8_t>& response) = 0;
};

/// In-process loopback to a `FleetServer` — the lossless transport.
class ServerLink final : public ByteLink {
 public:
  explicit ServerLink(FleetServer& server) : server_(&server) {}
  bool roundtrip(  // lint:allow-bool
      const std::vector<std::uint8_t>& request,
      std::vector<std::uint8_t>& response) override {
    server_->handle(request.data(), request.size(), response);
    return true;
  }

 private:
  FleetServer* server_;
};

/// Fault-injecting wrapper for tests: drops requests (server never sees
/// them), drops responses (server *did* execute — the idempotency case)
/// or corrupts a request byte (server answers kBadCrc). Deterministic for
/// a given seed.
class LossyLink final : public ByteLink {
 public:
  LossyLink(ByteLink& inner, Rng rng, double drop_request_prob,
            double drop_response_prob, double corrupt_prob)
      : inner_(&inner),
        rng_(rng),
        drop_request_(drop_request_prob),
        drop_response_(drop_response_prob),
        corrupt_(corrupt_prob) {}

  bool roundtrip(  // lint:allow-bool
      const std::vector<std::uint8_t>& request,
      std::vector<std::uint8_t>& response) override;

  std::uint64_t drops() const { return drops_; }
  std::uint64_t corruptions() const { return corruptions_; }

 private:
  ByteLink* inner_;
  Rng rng_;
  double drop_request_;
  double drop_response_;
  double corrupt_;
  std::uint64_t drops_ = 0;
  std::uint64_t corruptions_ = 0;
  std::vector<std::uint8_t> scratch_;
};

/// Client-side transport accounting.
struct ClientStats {
  std::uint64_t commands = 0;   // logical commands issued
  std::uint64_t attempts = 0;   // wire attempts including first tries
  std::uint64_t retries = 0;    // attempts beyond the first
  std::uint64_t downgrades = 0; // version negotiations performed
  double backoff_s = 0.0;       // cumulative simulated backoff
};

class FleetClient {
 public:
  struct ProtocolInfo {
    std::uint8_t min_version = 0;
    std::uint8_t current_version = 0;
    std::uint8_t header_size = 0;
    std::uint16_t max_payload = 0;
    std::uint16_t commands = 0;
  };

  struct SessionSpec {
    std::uint32_t id = 0;
    core::ChipKind kind = core::ChipKind::kNeuro;
    std::uint16_t rows = 8;
    std::uint16_t cols = 8;
    std::uint64_t seed = 1;
    std::uint16_t pool_frames = 4;
    std::uint16_t ring_depth = 32;
    std::uint8_t fault_preset = 0;  // v2+ only; must be 0 on a v1 link
  };

  struct Record {
    std::uint32_t index = 0;
    std::uint64_t payload = 0;
  };

  struct PollResult {
    std::uint16_t returned = 0;
    bool backpressure = false;
  };

  struct DrainSummary {
    std::uint32_t frames = 0;
    std::uint64_t digest = 0;
    std::uint64_t lost_words = 0;
    std::uint64_t retries = 0;
    double backoff_s = 0.0;
  };

  struct CheckpointInfo {
    std::uint32_t size = 0;     // serialized snapshot bytes
    std::uint64_t digest = 0;   // FNV-1a over the snapshot bytes
  };

  struct RestoreInfo {
    std::uint32_t frames_produced = 0;  // progress at the checkpoint
    std::uint64_t digest = 0;           // session record digest so far
  };

  struct SessionInfo {
    core::ChipKind kind = core::ChipKind::kNeuro;
    std::uint32_t pending = 0;
    std::uint32_t frames_produced = 0;
    std::uint64_t records_polled = 0;
    std::uint16_t ring_depth = 0;
    std::uint64_t ring_pushes = 0;
    std::uint64_t ring_pops = 0;
    std::uint64_t ring_push_stalls = 0;
    std::uint64_t lost_words = 0;
    std::uint64_t retries = 0;
    std::uint64_t wire_errors = 0;
  };

  /// Live health summary (v4+): one fixed-shape response a monitor polls
  /// cheaply — progress, flow control, link quality, last outcome and
  /// flight-recorder occupancy in a single round trip.
  struct HealthInfo {
    core::ChipKind kind = core::ChipKind::kNeuro;
    HostCommand last_command = HostCommand::kPing;
    HostStatus last_status = HostStatus::kOk;
    std::uint32_t pending = 0;
    std::uint32_t frames_produced = 0;
    std::uint16_t ring_size = 0;
    std::uint16_t ring_capacity = 0;
    std::uint16_t pool_frames = 0;
    std::uint64_t records_polled = 0;
    std::uint64_t commands_handled = 0;
    std::uint64_t retries = 0;
    std::uint64_t lost_words = 0;
    std::uint64_t wire_errors = 0;
    std::uint64_t ring_push_stalls = 0;
    std::uint64_t flight_recorded = 0;
    std::uint64_t flight_dropped = 0;
    double backoff_s = 0.0;
  };

  /// Flight-recorder dump receipt (v4+).
  struct FlightDumpInfo {
    std::uint32_t events = 0;       // retained in the ring at dump time
    std::uint64_t recorded = 0;     // lifetime events recorded
    std::uint64_t dropped = 0;      // lifetime events lost to wrap-around
    std::string path;               // artifact path on the server host
  };

  /// `version` is what the client *speaks*; it auto-downgrades into the
  /// server's window on the first kBadVersion answer.
  explicit FleetClient(ByteLink& link,
                       std::uint8_t version = kProtocolVersionCurrent,
                       dnachip::RetryPolicy retry = {});

  Result<ProtocolInfo, HostStatus> protocol_info();
  Result<std::uint32_t, HostStatus> capabilities();
  /// Echo check: sends `payload`, errors with kInternal on a mismatched
  /// echo (which would indicate response corruption past the CRC — never
  /// expected).
  Result<void, HostStatus> ping(const std::uint8_t* payload, std::size_t n);
  Result<void, HostStatus> create(const SessionSpec& spec);
  Result<void, HostStatus> configure(std::uint32_t id, std::uint8_t param,
                                     std::uint64_t value);
  /// Returns the session's queued backlog after the start.
  Result<std::uint32_t, HostStatus> start(std::uint32_t id,
                                          std::uint32_t frames);
  /// Appends up to `max_records` records to `out` (capacity reuse is the
  /// caller's — `out` is appended to, not cleared).
  Result<PollResult, HostStatus> poll(std::uint32_t id,
                                      std::uint16_t max_records,
                                      std::vector<Record>& out);
  Result<DrainSummary, HostStatus> drain(std::uint32_t id);
  Result<void, HostStatus> destroy(std::uint32_t id);
  Result<SessionInfo, HostStatus> query(std::uint32_t id);
  /// Snapshots the session server-side (v3+). The checkpoint persists in
  /// server memory and, when the server runs with a checkpoint directory,
  /// crash-safely on disk.
  Result<CheckpointInfo, HostStatus> checkpoint(std::uint32_t id);
  /// Rebuilds a checkpointed session (v3+) — on this server or on a fresh
  /// one pointed at the same checkpoint directory (dead-worker recovery).
  Result<RestoreInfo, HostStatus> restore(std::uint32_t id);
  /// Polls one session's health summary (v4+; needs server telemetry on).
  Result<HealthInfo, HostStatus> session_health(std::uint32_t id);
  /// Fetches and decodes the server's full metrics-registry snapshot
  /// (v4+), transparently chunking across as many frames as it takes.
  Result<obs::MetricsSnapshot, HostStatus> metrics();
  /// Dumps a session's flight-recorder ring (v4+) — or the server-wide
  /// ring when `id` is kServerFlightScope — as a Chrome-trace artifact.
  Result<FlightDumpInfo, HostStatus> dump_flight_recorder(std::uint32_t id);

  std::uint8_t version() const { return version_; }
  const ClientStats& stats() const { return stats_; }
  /// FNV-1a digest over every response frame's bytes, folded in command
  /// order — the bitwise-determinism witness the fleet bench compares
  /// across worker counts. Wire-level retries do not perturb it: only the
  /// final (accepted) response of each logical command is folded.
  std::uint64_t response_digest() const { return response_digest_; }

 private:
  /// One logical command: payload already built in `request_` behind the
  /// header placeholder. Handles retry + version downgrade; on success
  /// the response payload is view-accessible via `reply_*`.
  HostStatus transact(HostCommand command);
  /// Starts a request: clears `request_`, reserves the header, returns a
  /// writer for the payload.
  PayloadWriter begin_request();

  ByteLink* link_;
  std::uint8_t version_;
  dnachip::RetryPolicy retry_;
  std::uint16_t seq_ = 0;
  ClientStats stats_{};
  std::uint64_t response_digest_;
  std::vector<std::uint8_t> request_;
  std::vector<std::uint8_t> response_;
  const std::uint8_t* reply_payload_ = nullptr;
  std::size_t reply_len_ = 0;
};

}  // namespace biosense::host
