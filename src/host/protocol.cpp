#include "host/protocol.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace biosense::host {

const char* host_status_name(HostStatus status) {
  switch (status) {
    case HostStatus::kOk: return "ok";
    case HostStatus::kBadMagic: return "bad_magic";
    case HostStatus::kBadVersion: return "bad_version";
    case HostStatus::kBadCrc: return "bad_crc";
    case HostStatus::kTruncated: return "truncated";
    case HostStatus::kOversized: return "oversized";
    case HostStatus::kUnknownCommand: return "unknown_command";
    case HostStatus::kBadPayload: return "bad_payload";
    case HostStatus::kNoSuchSession: return "no_such_session";
    case HostStatus::kDuplicateSession: return "duplicate_session";
    case HostStatus::kBadState: return "bad_state";
    case HostStatus::kSessionLimit: return "session_limit";
    case HostStatus::kBackpressure: return "backpressure";
    case HostStatus::kFault: return "fault";
    case HostStatus::kInternal: return "internal";
  }
  return "unknown";
}

const char* host_command_name(HostCommand command) {
  switch (command) {
    case HostCommand::kGetProtocolInfo: return "get_protocol_info";
    case HostCommand::kGetCapabilities: return "get_capabilities";
    case HostCommand::kPing: return "ping";
    case HostCommand::kCreateSession: return "create_session";
    case HostCommand::kConfigureSession: return "configure_session";
    case HostCommand::kStartAcquisition: return "start_acquisition";
    case HostCommand::kPollFrames: return "poll_frames";
    case HostCommand::kDrainSession: return "drain_session";
    case HostCommand::kDestroySession: return "destroy_session";
    case HostCommand::kQuerySession: return "query_session";
    case HostCommand::kCheckpointSession: return "checkpoint_session";
    case HostCommand::kRestoreSession: return "restore_session";
    case HostCommand::kGetSessionHealth: return "get_session_health";
    case HostCommand::kServerStats: return "server_stats";
    case HostCommand::kGetMetrics: return "get_metrics";
    case HostCommand::kDumpFlightRecorder: return "dump_flight_recorder";
  }
  return "unknown";
}

namespace {

void put_le16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v & 0xff);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}

std::uint16_t get_le16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

}  // namespace

void finalize_frame(const FrameHeader& header,
                    std::vector<std::uint8_t>& frame) {
  require(frame.size() >= kHeaderSize,
          "finalize_frame: missing header placeholder");
  const std::size_t payload_len = frame.size() - kHeaderSize;
  require(payload_len <= kMaxPayload, "finalize_frame: payload too large");
  frame[0] = kFrameMagic;
  frame[1] = header.version;
  put_le16(&frame[2], static_cast<std::uint16_t>(header.command));
  put_le16(&frame[4], header.seq);
  put_le16(&frame[6], static_cast<std::uint16_t>(header.status));
  put_le16(&frame[8], static_cast<std::uint16_t>(payload_len));
  frame[10] = 0;  // reserved
  frame[11] = 0;  // crc placeholder — computed over the zeroed slot
  frame[11] = dnachip::crc8(frame.data(), frame.size());
}

void encode_frame(const FrameHeader& header, const std::uint8_t* payload,
                  std::size_t payload_len, std::vector<std::uint8_t>& out) {
  require(payload_len <= kMaxPayload, "encode_frame: payload too large");
  out.clear();
  out.resize(kHeaderSize);
  if (payload_len > 0) {
    out.insert(out.end(), payload, payload + payload_len);
  }
  finalize_frame(header, out);
}

Result<DecodedFrame, HostStatus> decode_frame(const std::uint8_t* bytes,
                                              std::size_t n) {
  using R = Result<DecodedFrame, HostStatus>;
  if (n < kHeaderSize) return R::err(HostStatus::kTruncated);
  if (bytes[0] != kFrameMagic) return R::err(HostStatus::kBadMagic);
  const std::uint16_t payload_len = get_le16(bytes + 8);
  if (payload_len > kMaxPayload) return R::err(HostStatus::kOversized);
  if (n != kHeaderSize + payload_len) return R::err(HostStatus::kTruncated);
  // CRC over the frame with the crc byte zeroed. Run it on a stack copy of
  // the header (so the caller's buffer stays const), continued over the
  // payload in place — the CRC register simply carries across the two
  // ranges because the polynomial division is a running state.
  std::uint8_t head[kHeaderSize];
  std::copy(bytes, bytes + kHeaderSize, head);
  const std::uint8_t expected = head[11];
  head[11] = 0;
  std::uint8_t acc = 0;
  auto step = [&acc](std::uint8_t byte) {
    acc = static_cast<std::uint8_t>(acc ^ byte);
    for (int i = 0; i < 8; ++i) {
      acc = (acc & 0x80) ? static_cast<std::uint8_t>((acc << 1) ^ 0x07)
                         : static_cast<std::uint8_t>(acc << 1);
    }
  };
  for (std::size_t i = 0; i < kHeaderSize; ++i) step(head[i]);
  for (std::size_t i = 0; i < payload_len; ++i) step(bytes[kHeaderSize + i]);
  if (acc != expected) return R::err(HostStatus::kBadCrc);

  DecodedFrame frame;
  frame.header.version = bytes[1];
  frame.header.command = static_cast<HostCommand>(get_le16(bytes + 2));
  frame.header.seq = get_le16(bytes + 4);
  frame.header.status = static_cast<HostStatus>(get_le16(bytes + 6));
  frame.header.payload_len = payload_len;
  frame.payload = payload_len > 0 ? bytes + kHeaderSize : nullptr;
  frame.payload_len = payload_len;
  return frame;
}

std::uint64_t PayloadReader::take(std::size_t width) {
  if (pos_ + width > n_) {
    ok_ = false;
    pos_ = n_;
    return 0;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
  }
  pos_ += width;
  return v;
}

void PayloadWriter::put(std::uint64_t v, std::size_t width) {
  require(out_->size() + width <= kMaxPayload,
          "PayloadWriter: response payload exceeds kMaxPayload");
  for (std::size_t i = 0; i < width; ++i) {
    out_->push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void PayloadWriter::bytes(const std::uint8_t* p, std::size_t n) {
  require(out_->size() + n <= kMaxPayload,
          "PayloadWriter: response payload exceeds kMaxPayload");
  out_->insert(out_->end(), p, p + n);
}

}  // namespace biosense::host
