// FleetServer: one process serving a fleet of virtual chips (DESIGN.md §12).
//
// The server multiplexes hundreds-to-thousands of concurrent chip sessions
// — mixed DNA microarray readout and neural streaming — behind the
// versioned host-command protocol. Every session is built through the
// audited `core::SessionOptions` surface, owns its chips/links/RNGs
// outright and is guarded by its own mutex, so commands for different
// sessions execute fully in parallel while commands for one session
// serialize. All per-session randomness is seeded from the client-chosen
// session id, which makes each session's response stream a pure function
// of its own command sequence: per-session outputs are bitwise identical
// no matter how many server worker threads interleave the fleet.
//
// Flow control is explicit, not implicit: admission control bounds the
// fleet's pooled-frame budget at create time (kSessionLimit), per-session
// acquisition backlogs are bounded (kBackpressure), and poll responses
// carry a backpressure flag whenever the session's bounded record ring
// could not absorb the remaining backlog. Under an active fault plan the
// transport degrades exactly like the lab: records carry typed error
// sentinels, responses turn into NACK-style typed statuses — the server
// never throws for wire- or fault-level trouble.
//
// Threading note: `handle` is safe to call from many threads. The chips'
// capture path uses the global deterministic parallel engine; when driving
// the server from several external worker threads, run that engine at one
// thread (`set_max_threads(1)`) so captures stay inline on the calling
// worker.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/channel.hpp"
#include "core/session_options.hpp"
#include "core/wire.hpp"
#include "host/dispatcher.hpp"
#include "host/protocol.hpp"
#include "neurochip/signal_source.hpp"
#include "obs/flight.hpp"

namespace biosense::host {

/// Server-wide resource policy.
struct FleetLimits {
  /// Hard cap on live sessions (admission control).
  std::size_t max_sessions = 1024;
  /// Fleet-wide pooled-frame budget: the sum of every live session's
  /// `pool_frames` may not exceed this (admission control).
  std::size_t frame_budget = 4096;
  /// Per-session backlog cap for queued acquisition work (backpressure).
  std::uint32_t max_pending = 1u << 16;
  /// Records returned per poll at most (bounds the response payload).
  std::uint16_t max_poll_records = 64;
  /// Obs prefix for per-session instruments ("fleet" -> "fleet.s42.ring.*").
  /// Empty disables per-session instruments — the configuration for
  /// throughput-critical fleets of hundreds of sessions.
  std::string obs_prefix{};
  /// Directory for crash-safe checkpoint persistence (kCheckpointSession).
  /// Empty keeps checkpoints in server memory only — a restore then only
  /// works on the same server instance; with a directory, a *fresh* server
  /// pointed at it can restore sessions a dead worker checkpointed.
  std::string checkpoint_dir{};
  /// Per-session flight-recorder ring capacity in events. 0 (the default)
  /// disables session telemetry entirely — no recorders, no per-command
  /// outcome tracking — so an untelemetered fleet pays nothing.
  std::size_t flight_events = 0;
  /// Server-wide flight-recorder ring capacity (session lifecycle,
  /// checkpoint/restore marks). 0 disables it.
  std::size_t server_flight_events = 0;
  /// Auto-dump flight recorders as Chrome-trace artifacts (under
  /// BIOSENSE_RESULTS_DIR): a session's ring when a command returns kFault
  /// and when the session is destroyed; the server ring at shutdown.
  bool flight_auto_dump = false;
};

/// Per-session counters surfaced by kQuerySession.
struct SessionStats {
  std::uint32_t frames_produced = 0;
  std::uint32_t pending = 0;
  std::uint32_t ring_depth = 0;
  std::uint64_t records_polled = 0;
  std::uint64_t lost_words = 0;
  std::uint64_t retries = 0;
  std::uint64_t wire_errors = 0;
  double backoff_s = 0.0;
};

class FleetServer {
 public:
  explicit FleetServer(FleetLimits limits = {});
  ~FleetServer();

  FleetServer(const FleetServer&) = delete;
  FleetServer& operator=(const FleetServer&) = delete;

  /// One request/response cycle. `request` is the raw frame, the response
  /// frame is built into `response` (cleared, capacity retained — reuse
  /// the buffer across calls for the allocation-free steady state).
  /// Thread-safe; never throws for protocol-, session- or fault-level
  /// failures (typed statuses instead).
  HostStatus handle(const std::uint8_t* request, std::size_t n,
                    std::vector<std::uint8_t>& response);

  std::size_t live_sessions() const;
  /// Pooled frames committed across live sessions (admission bookkeeping).
  std::size_t committed_frames() const;

  const Dispatcher& dispatcher() const { return dispatcher_; }

 private:
  /// One produced acquisition record: a frame (neuro) or site conversion
  /// (dna) reduced to an order-stamped 64-bit digest/value.
  struct Record {
    std::uint32_t index = 0;
    std::uint64_t payload = 0;
  };

  struct Session;

  void register_handlers();

  HostStatus cmd_protocol_info(const CommandContext& ctx);
  HostStatus cmd_capabilities(const CommandContext& ctx);
  HostStatus cmd_ping(const CommandContext& ctx);
  HostStatus cmd_create(const CommandContext& ctx);
  HostStatus cmd_configure(const CommandContext& ctx);
  HostStatus cmd_start(const CommandContext& ctx);
  HostStatus cmd_poll(const CommandContext& ctx);
  HostStatus cmd_drain(const CommandContext& ctx);
  HostStatus cmd_destroy(const CommandContext& ctx);
  HostStatus cmd_query(const CommandContext& ctx);
  HostStatus cmd_checkpoint(const CommandContext& ctx);
  HostStatus cmd_restore(const CommandContext& ctx);
  HostStatus cmd_server_stats(const CommandContext& ctx);
  HostStatus cmd_session_health(const CommandContext& ctx);
  HostStatus cmd_get_metrics(const CommandContext& ctx);
  HostStatus cmd_dump_flight(const CommandContext& ctx);

  /// Post-dispatch hook for session-scoped commands when telemetry is on:
  /// health outcome counters, rejection events, kFault auto-dump.
  void note_outcome(const CommandContext& ctx, HostStatus status);

  /// Produces the session's next record (advances chip/link state).
  Record produce_record(Session& s);

  /// Shared-lock session lookup; nullptr when absent.
  std::shared_ptr<Session> find_session(std::uint32_t id) const;

  /// Constructs a session through the audited `core::SessionOptions`
  /// surface (shared by create and restore). Returns nullptr and sets
  /// `status` on invalid parameters.
  std::shared_ptr<Session> build_session(std::uint32_t id,
                                         std::uint8_t kind_raw,
                                         std::uint16_t rows,
                                         std::uint16_t cols,
                                         std::uint64_t seed,
                                         std::uint16_t pool_frames,
                                         std::uint16_t ring_depth,
                                         std::uint8_t preset,
                                         HostStatus& status);

  /// Serializes one session (caller holds its mutex) into a snapshot
  /// container (DESIGN.md §13.2, fleet section registry).
  std::vector<std::uint8_t> save_session(const Session& s) const;

  FleetLimits limits_;
  Dispatcher dispatcher_;
  /// Server-wide event ring (disabled at capacity 0).
  obs::FlightRecorder server_flight_;

  mutable std::shared_mutex registry_mutex_;
  std::map<std::uint32_t, std::shared_ptr<Session>> sessions_;
  /// Destroyed ids: a destroy retry must stay idempotent (kOk) after the
  /// session is gone.
  std::map<std::uint32_t, bool> tombstones_;
  std::size_t committed_frames_ = 0;

  /// Latest checkpoint per session id (always kept in memory; additionally
  /// persisted crash-safely when `limits_.checkpoint_dir` is set).
  mutable std::mutex checkpoint_mutex_;
  std::map<std::uint32_t, std::vector<std::uint8_t>> checkpoints_;

  /// kGetMetrics chunk cache: a snapshot encoding can exceed one payload
  /// frame, so offset 0 re-encodes and later offsets serve from the cache.
  mutable std::mutex metrics_mutex_;
  std::vector<std::uint8_t> metrics_wire_;
};

}  // namespace biosense::host
