// In-sensor-site A/D conversion by current-to-frequency conversion (Fig. 3).
//
// The sensor electrode is held at its electrochemical potential by a
// regulation loop (op-amp + source follower); the sensor current is
// mirrored onto an integrating capacitor C_int. When the ramp reaches the
// comparator's switching threshold, a reset pulse (comparator propagation
// delay + delay stage + reset device on-time) discharges C_int and the
// cycle repeats; a digital counter counts reset pulses within a gate time.
//
//   period  T(I) = C_int * dV / I + t_dead,   t_dead = t_cmp + t_delay + t_rst
//   f(I) = 1/T  ~  I / (C_int * dV)  for  I << C_int*dV/t_dead
//
// Two simulation modes:
//  * `measure()` — exact event-driven simulation: ramp segments are solved
//    analytically so a 1 pA input (period ~ 2 min with the default sizing)
//    costs the same CPU as a 100 nA input. Per-cycle comparator noise,
//    electrode leakage and reset residual are included.
//  * `transient_waveform()` — fixed-step simulation using the behavioral
//    comparator, for waveform inspection (the Fig. 3 sawtooth).
#pragma once

#include <cstdint>

#include "circuit/comparator.hpp"
#include "circuit/trace.hpp"
#include "common/rng.hpp"

namespace biosense::i2f {

struct I2fConfig {
  double c_int = 140e-15;       // integrating capacitance, F
  double v_reset = 0.3;         // ramp start voltage, V
  double v_threshold = 1.0;     // comparator switching threshold, V
  double comparator_delay = 25e-9;   // t_cmp, s
  double delay_stage = 50e-9;        // t_delay, s
  double reset_width = 100e-9;       // reset device on-time, s
  double comparator_noise_rms = 300e-6;  // per-decision threshold noise, V
  double comparator_offset_sigma = 2e-3; // static offset spread, V
  double leakage = 20e-15;      // parasitic electrode/reset leakage, A
  double reset_residual_v = 1e-3;  // incomplete discharge above v_reset, V
};

/// Result of one gated conversion.
struct Conversion {
  std::uint64_t count = 0;     // reset pulses within the gate time
  double gate_time = 0.0;      // s
  double mean_frequency = 0.0; // count / gate_time, Hz
  double first_period = 0.0;   // s (0 if no complete cycle)
};

class SawtoothConverter {
 public:
  SawtoothConverter(I2fConfig config, Rng rng);

  /// Ideal conversion frequency for a sensor current (no noise, no offset).
  double ideal_frequency(double i_sensor) const;

  /// Dead time per cycle (comparator + delay stage + reset).
  double dead_time() const;

  /// Current at which the dead time equals the ramp time — the upper corner
  /// of the converter's linear range.
  double compression_corner_current() const;

  /// Event-driven conversion of a constant sensor current over `gate_time`.
  Conversion measure(double i_sensor, double gate_time);

  /// Fixed-step transient producing the integrator-node waveform.
  circuit::Trace transient_waveform(double i_sensor, double duration,
                                    double dt);

  const I2fConfig& config() const { return config_; }
  double comparator_offset() const;

 private:
  I2fConfig config_;
  Rng rng_;
  circuit::Comparator comparator_;
};

}  // namespace biosense::i2f
