// In-sensor-site A/D conversion by current-to-frequency conversion (Fig. 3).
//
// The sensor electrode is held at its electrochemical potential by a
// regulation loop (op-amp + source follower); the sensor current is
// mirrored onto an integrating capacitor C_int. When the ramp reaches the
// comparator's switching threshold, a reset pulse (comparator propagation
// delay + delay stage + reset device on-time) discharges C_int and the
// cycle repeats; a digital counter counts reset pulses within a gate time.
//
//   period  T(I) = C_int * dV / I + t_dead,   t_dead = t_cmp + t_delay + t_rst
//   f(I) = 1/T  ~  I / (C_int * dV)  for  I << C_int*dV/t_dead
//
// Two simulation modes:
//  * `measure()` — exact event-driven simulation: ramp segments are solved
//    analytically so a 1 pA input (period ~ 2 min with the default sizing)
//    costs the same CPU as a 100 nA input. Per-cycle comparator noise,
//    electrode leakage and reset residual are included.
//  * `transient_waveform()` — fixed-step simulation using the behavioral
//    comparator, for waveform inspection (the Fig. 3 sawtooth).
#pragma once

#include <cstdint>

#include "circuit/comparator.hpp"
#include "circuit/trace.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::i2f {

struct I2fConfig {
  Capacitance c_int = 140.0_fF;      // integrating capacitance
  Voltage v_reset = 0.3_V;           // ramp start voltage
  Voltage v_threshold = 1.0_V;       // comparator switching threshold
  Time comparator_delay = 25.0_ns;   // t_cmp
  Time delay_stage = 50.0_ns;        // t_delay
  Time reset_width = 100.0_ns;       // reset device on-time
  Voltage comparator_noise_rms = 300.0_uV;   // per-decision threshold noise
  Voltage comparator_offset_sigma = 2.0_mV;  // static offset spread
  Current leakage = 20.0_fA;         // parasitic electrode/reset leakage
  Voltage reset_residual_v = 1.0_mV;  // incomplete discharge above v_reset

  /// Ramp swing per cycle.
  constexpr Voltage delta_v() const { return v_threshold - v_reset; }
  /// Dead time per cycle (comparator + delay stage + reset).
  constexpr Time dead_time() const {
    return comparator_delay + delay_stage + reset_width;
  }
};

/// Result of one gated conversion.
struct Conversion {
  std::uint64_t count = 0;     // reset pulses within the gate time
  double gate_time = 0.0;      // s
  double mean_frequency = 0.0; // count / gate_time, Hz
  double first_period = 0.0;   // s (0 if no complete cycle)
};

class SawtoothConverter {
 public:
  SawtoothConverter(I2fConfig config, Rng rng);

  /// Ideal conversion frequency for a sensor current (no noise, no offset).
  double ideal_frequency(double i_sensor) const;

  /// Dead time per cycle (comparator + delay stage + reset).
  double dead_time() const;

  /// Current at which the dead time equals the ramp time — the upper corner
  /// of the converter's linear range.
  double compression_corner_current() const;

  /// Event-driven conversion of a constant sensor current over `gate_time`.
  Conversion measure(double i_sensor, double gate_time);

  /// Fixed-step transient producing the integrator-node waveform.
  circuit::Trace transient_waveform(double i_sensor, double duration,
                                    double dt);

  const I2fConfig& config() const { return config_; }
  double comparator_offset() const;

  /// The comparator's noise stream is the converter's only evolving state,
  /// and its advance is data-dependent (one draw per ramp cycle, cycle
  /// count depends on the measured current) — it cannot be re-derived from
  /// a frame counter, only restored.
  void save_state(snapshot::StateWriter& w) const {
    w.rng(rng_);
    comparator_.save_state(w);
  }
  void load_state(snapshot::StateReader& r) {
    r.rng(rng_);
    comparator_.load_state(r);
  }

 private:
  I2fConfig config_;  // analyze:transient - frozen config
  Rng rng_;
  circuit::Comparator comparator_;
};

}  // namespace biosense::i2f
