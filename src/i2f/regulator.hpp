// Electrode potential regulation loop (left half of Fig. 3).
//
// The sensor electrode must sit at a precise electrochemical potential
// (set by the periphery DAC) regardless of the sensor current it sources.
// An op-amp compares the electrode voltage against the DAC reference and
// drives a source-follower transistor that supplies the sensor current;
// the loop's DC error and transient settling determine how soon after a
// potential step the conversion is trustworthy.
#pragma once

#include "circuit/mosfet.hpp"
#include "circuit/opamp.hpp"
#include "circuit/trace.hpp"
#include "common/units.hpp"

namespace biosense::i2f {

struct RegulatorConfig {
  circuit::OpampParams opamp{};
  circuit::MosfetParams follower{};
  Capacitance electrode_cap = 5.0_pF;  // electrode double-layer capacitance
  Voltage vdd = 5.0_V;
  /// Constant sink current at the electrode node (bias network). The
  /// follower can only source current, so without a bleed path the loop
  /// could never correct an overshoot when the sensor draws mere pA.
  Current bias_sink = 1.0_nA;
};

class ElectrodeRegulator {
 public:
  explicit ElectrodeRegulator(RegulatorConfig config);

  /// Advances the loop by dt: the electrode sinks `i_sensor` into the
  /// electrochemical cell while the follower sources current from VDD.
  /// Returns the electrode voltage.
  double step(double v_target, double i_sensor, double dt);

  /// Runs until the electrode settles at v_target (within tol) or timeout;
  /// returns the recorded trace.
  circuit::Trace settle(double v_target, double i_sensor, double duration,
                        double dt);

  /// Steady-state regulation error |v_electrode - v_target| after `settle`.
  double dc_error(double v_target, double i_sensor);

  double electrode_voltage() const { return v_electrode_; }

 private:
  RegulatorConfig config_;
  circuit::Opamp opamp_;
  circuit::Mosfet follower_;
  double v_electrode_ = 0.0;
};

}  // namespace biosense::i2f
