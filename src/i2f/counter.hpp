// In-pixel digital counter / shift register (Fig. 3 right-hand block).
//
// Each sensor site counts its reset pulses in an n-bit ripple counter
// during the gate window; for readout the counters are chained into a
// shift register and clocked out serially (the chip has only a 6-pin
// digital interface). `RippleCounter` models count/overflow; `ShiftChain`
// models the serial readout path used by the dnachip module.
#pragma once

#include <cstdint>
#include <vector>

namespace biosense::i2f {

class RippleCounter {
 public:
  explicit RippleCounter(int bits = 16);

  void clock() { value_ = (value_ + 1) & mask_; }
  void count(std::uint64_t pulses);
  void reset() { value_ = 0; }

  std::uint64_t value() const { return value_; }
  int bits() const { return bits_; }
  std::uint64_t max_value() const { return mask_; }
  /// True if `pulses` events since the last reset exceeded the range.
  static bool would_overflow(std::uint64_t pulses, int bits) {
    return pulses > ((1ULL << bits) - 1);
  }

 private:
  int bits_;
  std::uint64_t mask_;
  std::uint64_t value_ = 0;
};

/// Serial chain of counters: load parallel, shift out bit by bit, MSB first
/// per counter, chain ordered first-counter-first.
class ShiftChain {
 public:
  explicit ShiftChain(int bits_per_counter);

  void load(const std::vector<std::uint64_t>& values);
  bool bits_remaining() const { return cursor_ < bits_.size(); }
  /// Shifts one bit out of the chain.
  bool shift_out();
  std::size_t total_bits() const { return bits_.size(); }

  /// Reassembles counter values from a captured bit stream (receiver side).
  static std::vector<std::uint64_t> decode(const std::vector<bool>& stream,
                                           int bits_per_counter);

 private:
  int bits_per_counter_;
  std::vector<bool> bits_;
  std::size_t cursor_ = 0;
};

}  // namespace biosense::i2f
