#include "i2f/sawtooth.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace biosense::i2f {

namespace {

circuit::ComparatorParams comparator_params(const I2fConfig& c) {
  circuit::ComparatorParams p;
  p.threshold = c.v_threshold.value();
  p.prop_delay = c.comparator_delay.value();
  p.offset_sigma = c.comparator_offset_sigma.value();
  p.noise_rms = c.comparator_noise_rms.value();
  return p;
}

}  // namespace

SawtoothConverter::SawtoothConverter(I2fConfig config, Rng rng)
    : config_(config),
      rng_(rng),
      comparator_(comparator_params(config), rng_.fork()) {
  require(config.c_int > Capacitance(0.0), "I2F: C_int must be positive");
  require(config.v_threshold > config.v_reset,
          "I2F: threshold must exceed reset level");
  require(config.comparator_delay >= Time(0.0) &&
              config.delay_stage >= Time(0.0) &&
              config.reset_width >= Time(0.0),
          "I2F: delays must be non-negative");
}

double SawtoothConverter::dead_time() const {
  return config_.dead_time().value();
}

double SawtoothConverter::ideal_frequency(double i_sensor) const {
  if (i_sensor <= 0.0) return 0.0;
  const double ramp =
      (config_.c_int * config_.delta_v()).value() / i_sensor;
  return 1.0 / (ramp + dead_time());
}

double SawtoothConverter::compression_corner_current() const {
  // C*dV/t_dead has dimension charge/time = current.
  return (config_.c_int * config_.delta_v() / config_.dead_time()).value();
}

double SawtoothConverter::comparator_offset() const {
  return comparator_.static_offset();
}

Conversion SawtoothConverter::measure(double i_sensor, double gate_time) {
  BIOSENSE_SPAN("i2f.measure");
  require(gate_time > 0.0, "I2F: gate time must be positive");
  Conversion out;
  out.gate_time = gate_time;

  // Net integration current: sensor plus leakage (leakage pulls up in this
  // topology — it adds to the ramp; a sign flip would model it pulling
  // down). Below the leakage floor the converter reads the leakage, which
  // is exactly the low-end error of the real chip.
  const double i_net = i_sensor + config_.leakage.value();
  if (i_net <= 0.0) return out;

  // Hot loop: unwrap the typed config once at the boundary.
  const double c_int = config_.c_int.value();
  const double v_reset = config_.v_reset.value();
  const double v_residual = config_.reset_residual_v.value();
  const double t_dead = dead_time();

  double t = 0.0;
  double v = v_reset;
  bool first = true;
  while (true) {
    // Per-cycle effective threshold: static offset + per-decision noise.
    const double vth = comparator_.decision_threshold_up();
    const double dv = std::max(1e-6, vth - v);
    const double ramp_time = c_int * dv / i_net;
    const double cycle = ramp_time + t_dead;
    if (t + cycle > gate_time) break;
    t += cycle;
    ++out.count;
    if (first) {
      out.first_period = cycle;
      first = false;
    }
    // Reset is slightly incomplete: the ramp restarts a little above
    // v_reset, and the sensor keeps integrating during the dead time is
    // already accounted for by restarting from the residual level.
    v = v_reset + v_residual;
  }
  out.mean_frequency = static_cast<double>(out.count) / gate_time;
  // Conversion effort telemetry: reset cycles per gated conversion span the
  // converter's five decades, so decade buckets mirror Fig. 3's axis.
  BIOSENSE_COUNT("i2f.conversions", 1);
  BIOSENSE_COUNT("i2f.cycles", out.count);
  BIOSENSE_OBSERVE("i2f.cycles_per_conversion",
                   ::biosense::obs::decade_buckets(1.0, 7),
                   static_cast<double>(out.count));
  return out;
}

circuit::Trace SawtoothConverter::transient_waveform(double i_sensor,
                                                     double duration,
                                                     double dt) {
  require(dt > 0.0 && duration > 0.0, "I2F: invalid transient window");
  circuit::Trace trace;
  comparator_.reset();

  // Hot loop: unwrap the typed config once at the boundary.
  const double i_net = i_sensor + config_.leakage.value();
  const double c_int = config_.c_int.value();
  const double v_reset = config_.v_reset.value();
  const double v_residual = config_.reset_residual_v.value();
  const double reset_width = config_.reset_width.value();
  const double delay_stage = config_.delay_stage.value();

  double v = v_reset;
  double reset_left = 0.0;   // remaining reset-device on-time
  double delay_left = -1.0;  // remaining delay-stage time (<0 = idle)

  for (double t = 0.0; t <= duration; t += dt) {
    trace.record(t, v);
    if (reset_left > 0.0) {
      // Reset device discharges C_int toward v_reset much faster than the
      // ramp; modeled as an exponential with tau = reset_width/5.
      const double tau = reset_width / 5.0;
      v = v_reset + v_residual +
          (v - v_reset - v_residual) * std::exp(-dt / tau);
      reset_left -= dt;
      continue;
    }
    v += i_net * dt / c_int;
    if (delay_left >= 0.0) {
      delay_left -= dt;
      if (delay_left < 0.0) reset_left = reset_width;
      continue;
    }
    if (comparator_.step(v, dt)) delay_left = delay_stage;
  }
  return trace;
}

}  // namespace biosense::i2f
