#include "i2f/sawtooth.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace biosense::i2f {

namespace {

circuit::ComparatorParams comparator_params(const I2fConfig& c) {
  circuit::ComparatorParams p;
  p.threshold = c.v_threshold;
  p.prop_delay = c.comparator_delay;
  p.offset_sigma = c.comparator_offset_sigma;
  p.noise_rms = c.comparator_noise_rms;
  return p;
}

}  // namespace

SawtoothConverter::SawtoothConverter(I2fConfig config, Rng rng)
    : config_(config),
      rng_(rng),
      comparator_(comparator_params(config), rng_.fork()) {
  require(config.c_int > 0.0, "I2F: C_int must be positive");
  require(config.v_threshold > config.v_reset,
          "I2F: threshold must exceed reset level");
  require(config.comparator_delay >= 0.0 && config.delay_stage >= 0.0 &&
              config.reset_width >= 0.0,
          "I2F: delays must be non-negative");
}

double SawtoothConverter::dead_time() const {
  return config_.comparator_delay + config_.delay_stage + config_.reset_width;
}

double SawtoothConverter::ideal_frequency(double i_sensor) const {
  if (i_sensor <= 0.0) return 0.0;
  const double dv = config_.v_threshold - config_.v_reset;
  const double ramp = config_.c_int * dv / i_sensor;
  return 1.0 / (ramp + dead_time());
}

double SawtoothConverter::compression_corner_current() const {
  const double dv = config_.v_threshold - config_.v_reset;
  return config_.c_int * dv / dead_time();
}

double SawtoothConverter::comparator_offset() const {
  return comparator_.static_offset();
}

Conversion SawtoothConverter::measure(double i_sensor, double gate_time) {
  require(gate_time > 0.0, "I2F: gate time must be positive");
  Conversion out;
  out.gate_time = gate_time;

  // Net integration current: sensor plus leakage (leakage pulls up in this
  // topology — it adds to the ramp; a sign flip would model it pulling
  // down). Below the leakage floor the converter reads the leakage, which
  // is exactly the low-end error of the real chip.
  const double i_net = i_sensor + config_.leakage;
  if (i_net <= 0.0) return out;

  double t = 0.0;
  double v = config_.v_reset;
  bool first = true;
  while (true) {
    // Per-cycle effective threshold: static offset + per-decision noise.
    const double vth = comparator_.decision_threshold_up();
    const double dv = std::max(1e-6, vth - v);
    const double ramp_time = config_.c_int * dv / i_net;
    const double cycle = ramp_time + dead_time();
    if (t + cycle > gate_time) break;
    t += cycle;
    ++out.count;
    if (first) {
      out.first_period = cycle;
      first = false;
    }
    // Reset is slightly incomplete: the ramp restarts a little above
    // v_reset, and the sensor keeps integrating during the dead time is
    // already accounted for by restarting from the residual level.
    v = config_.v_reset + config_.reset_residual_v;
  }
  out.mean_frequency = static_cast<double>(out.count) / gate_time;
  return out;
}

circuit::Trace SawtoothConverter::transient_waveform(double i_sensor,
                                                     double duration,
                                                     double dt) {
  require(dt > 0.0 && duration > 0.0, "I2F: invalid transient window");
  circuit::Trace trace;
  comparator_.reset();

  const double i_net = i_sensor + config_.leakage;
  double v = config_.v_reset;
  double reset_left = 0.0;   // remaining reset-device on-time
  double delay_left = -1.0;  // remaining delay-stage time (<0 = idle)

  for (double t = 0.0; t <= duration; t += dt) {
    trace.record(t, v);
    if (reset_left > 0.0) {
      // Reset device discharges C_int toward v_reset much faster than the
      // ramp; modeled as an exponential with tau = reset_width/5.
      const double tau = config_.reset_width / 5.0;
      v = config_.v_reset + config_.reset_residual_v +
          (v - config_.v_reset - config_.reset_residual_v) *
              std::exp(-dt / tau);
      reset_left -= dt;
      continue;
    }
    v += i_net * dt / config_.c_int;
    if (delay_left >= 0.0) {
      delay_left -= dt;
      if (delay_left < 0.0) reset_left = config_.reset_width;
      continue;
    }
    if (comparator_.step(v, dt)) delay_left = config_.delay_stage;
  }
  return trace;
}

}  // namespace biosense::i2f
