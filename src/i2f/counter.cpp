#include "i2f/counter.hpp"

#include "common/error.hpp"

namespace biosense::i2f {

RippleCounter::RippleCounter(int bits) : bits_(bits) {
  require(bits >= 1 && bits <= 32, "RippleCounter: bits must be in [1,32]");
  mask_ = (1ULL << bits) - 1;
}

void RippleCounter::count(std::uint64_t pulses) {
  value_ = (value_ + pulses) & mask_;
}

ShiftChain::ShiftChain(int bits_per_counter)
    : bits_per_counter_(bits_per_counter) {
  require(bits_per_counter >= 1 && bits_per_counter <= 32,
          "ShiftChain: bits must be in [1,32]");
}

void ShiftChain::load(const std::vector<std::uint64_t>& values) {
  bits_.clear();
  bits_.reserve(values.size() * static_cast<std::size_t>(bits_per_counter_));
  for (std::uint64_t v : values) {
    for (int b = bits_per_counter_ - 1; b >= 0; --b) {
      bits_.push_back((v >> b) & 1ULL);
    }
  }
  cursor_ = 0;
}

bool ShiftChain::shift_out() {
  require(bits_remaining(), "ShiftChain: shift past end");
  return bits_[cursor_++];
}

std::vector<std::uint64_t> ShiftChain::decode(const std::vector<bool>& stream,
                                              int bits_per_counter) {
  require(bits_per_counter >= 1 && bits_per_counter <= 32,
          "ShiftChain::decode: bits must be in [1,32]");
  require(stream.size() % static_cast<std::size_t>(bits_per_counter) == 0,
          "ShiftChain::decode: stream length not a multiple of word size");
  std::vector<std::uint64_t> out;
  out.reserve(stream.size() / static_cast<std::size_t>(bits_per_counter));
  for (std::size_t i = 0; i < stream.size();
       i += static_cast<std::size_t>(bits_per_counter)) {
    std::uint64_t v = 0;
    for (int b = 0; b < bits_per_counter; ++b) {
      v = (v << 1) | (stream[i + static_cast<std::size_t>(b)] ? 1ULL : 0ULL);
    }
    out.push_back(v);
  }
  return out;
}

}  // namespace biosense::i2f
