#include "i2f/regulator.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biosense::i2f {

ElectrodeRegulator::ElectrodeRegulator(RegulatorConfig config)
    : config_(config), opamp_(config.opamp), follower_(config.follower) {
  require(config.electrode_cap > Capacitance(0.0),
          "ElectrodeRegulator: electrode capacitance must be positive");
  require(config.vdd > Voltage(0.0),
          "ElectrodeRegulator: VDD must be positive");
}

double ElectrodeRegulator::step(double v_target, double i_sensor, double dt) {
  // Op-amp drives the follower gate; follower sources current from VDD
  // into the electrode node; the sensor (electrochemical cell) sinks
  // i_sensor from the node.
  const double vdd = config_.vdd.value();
  const double v_gate = opamp_.step(v_target, v_electrode_, dt);
  const double i_follower =
      follower_.drain_current(v_gate, vdd, v_electrode_);
  const double i_node = i_follower - i_sensor - config_.bias_sink.value();
  v_electrode_ += i_node * dt / config_.electrode_cap.value();
  if (v_electrode_ < 0.0) v_electrode_ = 0.0;
  if (v_electrode_ > vdd) v_electrode_ = vdd;
  return v_electrode_;
}

circuit::Trace ElectrodeRegulator::settle(double v_target, double i_sensor,
                                          double duration, double dt) {
  circuit::Trace trace;
  for (double t = 0.0; t <= duration; t += dt) {
    trace.record(t, step(v_target, i_sensor, dt));
  }
  return trace;
}

double ElectrodeRegulator::dc_error(double v_target, double i_sensor) {
  // Generous settling window: the dominant time constant is the op-amp
  // pole (up to ~1.6 ms open-loop for a 100 dB amplifier at 10 MHz GBW).
  settle(v_target, i_sensor, 5e-3, 20e-9);
  return std::abs(v_electrode_ - v_target);
}

}  // namespace biosense::i2f
