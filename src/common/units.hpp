// SI unit literals and physical constants.
//
// Every literal returns a typed `Quantity` (see common/quantity.hpp), so
// call sites are self-documenting AND dimension-checked by the compiler:
//
//     i2f::I2fConfig cfg;
//     cfg.c_int = 140.0_fF;     // Capacitance
//     cfg.delta_v = 0.7_V;      // Voltage — `cfg.c_int = 0.7_V` won't compile
//
// Both floating (`140.0_fF`) and integer (`140_fF`) forms exist for every
// literal. Raw doubles are reached explicitly via `.value()`.
#pragma once

#include "common/quantity.hpp"

namespace biosense {

// --- physical constants (CODATA values, SI) --------------------------------

namespace constants {

inline constexpr double kBoltzmann = 1.380649e-23;      // J/K
inline constexpr double kElectronCharge = 1.602176634e-19;  // C
inline constexpr double kGasConstant = 8.314462618;     // J/(mol K)
inline constexpr double kAvogadro = 6.02214076e23;      // 1/mol
inline constexpr double kFaraday = 96485.33212;         // C/mol
inline constexpr double kZeroCelsius = 273.15;          // K
inline constexpr double kBodyTempK = 310.15;            // 37 C in K
inline constexpr double kRoomTempK = 300.0;             // K
inline constexpr double kPi = 3.14159265358979323846;

}  // namespace constants

// --- unit literals ----------------------------------------------------------

inline namespace literals {

// Each literal accepts both `long double` (1.5_mV) and `unsigned long long`
// (10_mV) operands and returns the typed quantity for its unit.
#define BIOSENSE_UNIT_LITERAL(suffix, Type, scale)                       \
  constexpr Type operator""_##suffix(long double v) {                    \
    return Type(static_cast<double>(v) * (scale));                       \
  }                                                                      \
  constexpr Type operator""_##suffix(unsigned long long v) {             \
    return Type(static_cast<double>(v) * (scale));                       \
  }

// Voltage
BIOSENSE_UNIT_LITERAL(V, Voltage, 1.0)
BIOSENSE_UNIT_LITERAL(mV, Voltage, 1e-3)
BIOSENSE_UNIT_LITERAL(uV, Voltage, 1e-6)

// Current
BIOSENSE_UNIT_LITERAL(A, Current, 1.0)
BIOSENSE_UNIT_LITERAL(mA, Current, 1e-3)
BIOSENSE_UNIT_LITERAL(uA, Current, 1e-6)
BIOSENSE_UNIT_LITERAL(nA, Current, 1e-9)
BIOSENSE_UNIT_LITERAL(pA, Current, 1e-12)
BIOSENSE_UNIT_LITERAL(fA, Current, 1e-15)

// Capacitance
BIOSENSE_UNIT_LITERAL(F, Capacitance, 1.0)
BIOSENSE_UNIT_LITERAL(uF, Capacitance, 1e-6)
BIOSENSE_UNIT_LITERAL(nF, Capacitance, 1e-9)
BIOSENSE_UNIT_LITERAL(pF, Capacitance, 1e-12)
BIOSENSE_UNIT_LITERAL(fF, Capacitance, 1e-15)

// Resistance
BIOSENSE_UNIT_LITERAL(Ohm, Resistance, 1.0)
BIOSENSE_UNIT_LITERAL(kOhm, Resistance, 1e3)
BIOSENSE_UNIT_LITERAL(MOhm, Resistance, 1e6)
BIOSENSE_UNIT_LITERAL(GOhm, Resistance, 1e9)

// Time
BIOSENSE_UNIT_LITERAL(s, Time, 1.0)
BIOSENSE_UNIT_LITERAL(ms, Time, 1e-3)
BIOSENSE_UNIT_LITERAL(us, Time, 1e-6)
BIOSENSE_UNIT_LITERAL(ns, Time, 1e-9)

// Frequency
BIOSENSE_UNIT_LITERAL(Hz, Frequency, 1.0)
BIOSENSE_UNIT_LITERAL(kHz, Frequency, 1e3)
BIOSENSE_UNIT_LITERAL(MHz, Frequency, 1e6)

// Length
BIOSENSE_UNIT_LITERAL(m, Length, 1.0)
BIOSENSE_UNIT_LITERAL(mm, Length, 1e-3)
BIOSENSE_UNIT_LITERAL(um, Length, 1e-6)
BIOSENSE_UNIT_LITERAL(nm, Length, 1e-9)

// Concentration (molar)
BIOSENSE_UNIT_LITERAL(M, Concentration, 1.0)
BIOSENSE_UNIT_LITERAL(mM, Concentration, 1e-3)
BIOSENSE_UNIT_LITERAL(uM, Concentration, 1e-6)
BIOSENSE_UNIT_LITERAL(nM, Concentration, 1e-9)
BIOSENSE_UNIT_LITERAL(pM, Concentration, 1e-12)

// Energy (for thermodynamics tables quoted in kcal/mol)
BIOSENSE_UNIT_LITERAL(kcal_per_mol, MolarEnergy, 4184.0)  // -> J/mol

#undef BIOSENSE_UNIT_LITERAL

}  // namespace literals

/// Thermal voltage kT/q at temperature `temp_k`.
constexpr Voltage thermal_voltage(double temp_k) {
  return Voltage(constants::kBoltzmann * temp_k / constants::kElectronCharge);
}

}  // namespace biosense
