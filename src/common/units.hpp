// SI unit literals and physical constants.
//
// Convention used throughout biosense: every physical quantity is a plain
// `double` in SI base/derived units (volts, amperes, farads, seconds,
// hertz, meters, kelvin, moles per liter for concentrations). The literals
// below make call sites self-documenting without the overhead of a full
// dimensional-analysis type system:
//
//     i2f::Config cfg;
//     cfg.c_int = 140.0_fF;
//     cfg.delta_v = 0.7_V;
//
#pragma once

namespace biosense {

// --- physical constants (CODATA values, SI) --------------------------------

namespace constants {

inline constexpr double kBoltzmann = 1.380649e-23;      // J/K
inline constexpr double kElectronCharge = 1.602176634e-19;  // C
inline constexpr double kGasConstant = 8.314462618;     // J/(mol K)
inline constexpr double kAvogadro = 6.02214076e23;      // 1/mol
inline constexpr double kFaraday = 96485.33212;         // C/mol
inline constexpr double kZeroCelsius = 273.15;          // K
inline constexpr double kBodyTempK = 310.15;            // 37 C in K
inline constexpr double kRoomTempK = 300.0;             // K
inline constexpr double kPi = 3.14159265358979323846;

}  // namespace constants

// --- unit literals ----------------------------------------------------------

inline namespace literals {

// Voltage
constexpr double operator""_V(long double v) { return static_cast<double>(v); }
constexpr double operator""_V(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_mV(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uV(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uV(unsigned long long v) { return static_cast<double>(v) * 1e-6; }

// Current
constexpr double operator""_A(long double v) { return static_cast<double>(v); }
constexpr double operator""_mA(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uA(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_uA(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nA(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_nA(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pA(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_pA(unsigned long long v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fA(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_fA(unsigned long long v) { return static_cast<double>(v) * 1e-15; }

// Capacitance
constexpr double operator""_F(long double v) { return static_cast<double>(v); }
constexpr double operator""_uF(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nF(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_pF(unsigned long long v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }
constexpr double operator""_fF(unsigned long long v) { return static_cast<double>(v) * 1e-15; }

// Resistance
constexpr double operator""_Ohm(long double v) { return static_cast<double>(v); }
constexpr double operator""_kOhm(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_kOhm(unsigned long long v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MOhm(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_MOhm(unsigned long long v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_GOhm(long double v) { return static_cast<double>(v) * 1e9; }
constexpr double operator""_GOhm(unsigned long long v) { return static_cast<double>(v) * 1e9; }

// Time
constexpr double operator""_s(long double v) { return static_cast<double>(v); }
constexpr double operator""_s(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_ms(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_ms(unsigned long long v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_us(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_us(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_ns(unsigned long long v) { return static_cast<double>(v) * 1e-9; }

// Frequency
constexpr double operator""_Hz(long double v) { return static_cast<double>(v); }
constexpr double operator""_Hz(unsigned long long v) { return static_cast<double>(v); }
constexpr double operator""_kHz(long double v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_kHz(unsigned long long v) { return static_cast<double>(v) * 1e3; }
constexpr double operator""_MHz(long double v) { return static_cast<double>(v) * 1e6; }
constexpr double operator""_MHz(unsigned long long v) { return static_cast<double>(v) * 1e6; }

// Length
constexpr double operator""_m(long double v) { return static_cast<double>(v); }
constexpr double operator""_mm(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_um(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_nm(unsigned long long v) { return static_cast<double>(v) * 1e-9; }

// Concentration (molar)
constexpr double operator""_M(long double v) { return static_cast<double>(v); }
constexpr double operator""_mM(long double v) { return static_cast<double>(v) * 1e-3; }
constexpr double operator""_uM(long double v) { return static_cast<double>(v) * 1e-6; }
constexpr double operator""_nM(long double v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_nM(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
constexpr double operator""_pM(long double v) { return static_cast<double>(v) * 1e-12; }
constexpr double operator""_pM(unsigned long long v) { return static_cast<double>(v) * 1e-12; }

// Energy (for thermodynamics tables quoted in kcal/mol)
constexpr double operator""_kcal_per_mol(long double v) {
  return static_cast<double>(v) * 4184.0;  // J/mol
}

}  // namespace literals

/// Thermal voltage kT/q at temperature `temp_k`.
constexpr double thermal_voltage(double temp_k) {
  return constants::kBoltzmann * temp_k / constants::kElectronCharge;
}

}  // namespace biosense
