#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace biosense {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFit linear_fit(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("linear_fit: need >= 2 equally sized samples");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0.0) {
    fit.slope = 0.0;
    fit.intercept = sy / n;
  } else {
    fit.slope = (n * sxy - sx * sy) / denom;
    fit.intercept = (sy - fit.slope * sx) / n;
  }
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += r * r;
    fit.max_abs_residual = std::max(fit.max_abs_residual, std::abs(r));
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) throw std::invalid_argument("percentile: empty sample");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.mean();
}

double stddev(std::span<const double> values) {
  RunningStats s;
  for (double v : values) s.add(v);
  return s.stddev();
}

double rms(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double acc = 0.0;
  for (double v : values) acc += v * v;
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double mad_sigma(std::span<const double> values) {
  if (values.empty()) return 0.0;
  std::vector<double> work(values.begin(), values.end());
  std::nth_element(work.begin(), work.begin() + work.size() / 2, work.end());
  const double med = work[work.size() / 2];
  for (auto& v : work) v = std::abs(v - med);
  std::nth_element(work.begin(), work.begin() + work.size() / 2, work.end());
  return 1.4826 * work[work.size() / 2];
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  auto idx = t <= 0.0 ? 0
                      : std::min(counts_.size() - 1,
                                 static_cast<std::size_t>(t));
  ++counts_[idx];
  ++total_;
}

double Histogram::bin_center(std::size_t i) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * width;
}

}  // namespace biosense
