// Plain-text result tables and CSV output for the benchmark harnesses.
//
// Every bench binary prints the series a paper figure/table reports through
// a `Table`, so the output format is uniform across experiments:
//
//     Table t("Fig. 3: frequency vs sensor current");
//     t.set_columns({"I_sensor [A]", "f [Hz]", "dev from fit [%]"});
//     t.add_row({1e-12, 0.0102, 0.3});
//     t.print(std::cout);
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace biosense {

/// One table cell: text or a number (printed with %.6g).
using Cell = std::variant<std::string, double, long long>;

class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  void set_columns(std::vector<std::string> names) { columns_ = std::move(names); }
  void add_row(std::vector<Cell> row);
  /// Free-form footnote printed under the table (paper-vs-measured notes).
  void add_note(std::string note) { notes_.push_back(std::move(note)); }

  std::size_t rows() const { return rows_.size(); }
  const std::string& title() const { return title_; }

  /// Pretty-prints with aligned columns and a separator rule.
  void print(std::ostream& os) const;

  /// Writes the rows as CSV (header = column names).
  void write_csv(std::ostream& os) const;

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
  std::vector<std::string> notes_;
};

/// Formats a value with an SI prefix, e.g. 1.3e-12 -> "1.3 pA".
std::string si_format(double value, const std::string& unit, int digits = 3);

}  // namespace biosense
