#include "common/parallel.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace biosense {

namespace {

// Set while a pool thread (or a caller inside parallel_for) is executing a
// job; nested parallel_for calls then run serially instead of deadlocking
// on the shared pool.
thread_local bool t_inside_job = false;

int default_threads() {
  if (const char* env = std::getenv("BIOSENSE_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_requested_threads = 0;  // 0 = not configured yet

ThreadPool& locked_global(int threads) {
  if (!g_pool || g_pool->size() != threads) {
    g_pool = std::make_unique<ThreadPool>(threads);
  }
  return *g_pool;
}

}  // namespace

ThreadPool::ThreadPool(int n_threads) : n_threads_(std::max(1, n_threads)) {
  workers_.reserve(static_cast<std::size_t>(n_threads_ - 1));
  for (int i = 0; i < n_threads_ - 1; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(const Job& job) {
  const bool was_inside = t_inside_job;
  t_inside_job = true;
  for (;;) {
    const std::int64_t chunk_begin = next_.fetch_add(job.grain);
    if (chunk_begin >= job.end) break;
    BIOSENSE_COUNT("parallel.chunks", 1);
    const std::int64_t chunk_end = std::min(job.end, chunk_begin + job.grain);
    try {
      for (std::int64_t i = chunk_begin; i < chunk_end; ++i) (*job.body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(error_mutex_);
      if (!first_error_) first_error_ = std::current_exception();
      // Keep draining remaining chunks so sibling threads finish cleanly;
      // the stored exception is rethrown on the caller.
    }
  }
  t_inside_job = was_inside;
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      start_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      job = job_;
    }
    {
      BIOSENSE_SPAN("parallel.worker_job");
      run_chunks(job);
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--active_workers_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              std::int64_t grain,
                              const std::function<void(std::int64_t)>& body) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t n = end - begin;
  // Serial fast paths: one thread, one chunk, or a nested call from inside
  // a job (re-entrant use of the shared pool would deadlock).
  if (n_threads_ == 1 || n <= grain || t_inside_job) {
    BIOSENSE_COUNT("parallel.serial_runs", 1);
    for (std::int64_t i = begin; i < end; ++i) body(i);
    return;
  }

  BIOSENSE_SPAN("parallel.for");
  BIOSENSE_COUNT("parallel.jobs", 1);
  BIOSENSE_OBSERVE("parallel.items_per_job",
                   ::biosense::obs::decade_buckets(10.0, 6), n);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = Job{end, grain, &body};
    next_.store(begin, std::memory_order_relaxed);
    first_error_ = nullptr;
    active_workers_ = static_cast<int>(workers_.size());
    ++generation_;
  }
  start_cv_.notify_all();

  run_chunks(job_);  // the caller participates

  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  }
  if (first_error_) std::rethrow_exception(first_error_);
}

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_requested_threads == 0) g_requested_threads = default_threads();
  return locked_global(g_requested_threads);
}

int max_threads() {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  if (g_requested_threads == 0) g_requested_threads = default_threads();
  return g_requested_threads;
}

bool inside_parallel_job() { return t_inside_job; }

void set_max_threads(int n) {
  std::lock_guard<std::mutex> lock(g_pool_mutex);
  g_requested_threads = std::max(1, n);
  locked_global(g_requested_threads);
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  std::int64_t grain) {
  ThreadPool::global().parallel_for(begin, end, grain, body);
}

}  // namespace biosense
