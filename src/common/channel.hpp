// Bounded blocking channel for the streaming pipeline.
//
// A mutex/condvar MPMC queue with a fixed capacity — the backpressure
// element of the stage graph (see DESIGN.md §11). Producers block (or fail
// fast with `try_push`) when the consumer falls behind, so a pipeline's
// memory footprint is set by its pool and queue capacities, never by run
// length. Storage is a ring buffer preallocated at construction (T must be
// default-constructible and movable): a push/pop cycle moves the item and
// touches no allocator, which the streaming pipeline's zero-steady-state-
// allocation budget depends on. Explicit accounting: every blocking episode
// is counted per side, and a channel constructed with a name registers a
// queue-depth gauge and stall counters with the observability registry
// (always-on registry access — a depth update is one relaxed store,
// negligible next to the queue's own mutex, and metrics never feed back
// into what is computed, so the determinism contract is untouched).
//
// Shutdown: `close()` wakes every blocked producer and consumer. Blocked
// or subsequent pushes return false; pops drain the remaining items and
// then return nullopt. Determinism note: a channel orders *when* frames
// move, never their contents — values are owned by exactly one stage at a
// time, so capacities affect blocking, not results.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "snapshot/state_io.hpp"

namespace biosense {

/// Snapshot of one channel's traffic and backpressure accounting.
struct ChannelStats {
  std::uint64_t pushes = 0;       // items accepted
  std::uint64_t pops = 0;         // items delivered
  std::uint64_t push_stalls = 0;  // blocking episodes with the queue full
  std::uint64_t pop_stalls = 0;   // blocking episodes with the queue empty
  std::size_t max_depth = 0;      // high-water mark
};

template <typename T>
class Channel {
 public:
  /// A zero capacity is clamped to 1 (a rendezvous of depth 0 cannot make
  /// progress with blocking semantics). `name`, when non-empty, registers
  /// `<name>.depth` (gauge), `<name>.push_stalls` and `<name>.pop_stalls`
  /// (counters) with the global registry. The name is claimed through
  /// `Registry::claim_prefix`, so two channels constructed with the same
  /// name get distinct instruments (`name.*`, `name#2.*`, ...) instead of
  /// silently aliasing each other — with hundreds of fleet sessions each
  /// owning a ring, aliased stall counters would be unattributable.
  explicit Channel(std::size_t capacity, const std::string& name = {})
      : capacity_(capacity == 0 ? 1 : capacity), ring_(capacity_) {
    if (!name.empty()) {
      auto& registry = obs::Registry::global();
      const std::string prefix = registry.claim_prefix(name);
      depth_gauge_ = &registry.gauge(prefix + ".depth");
      push_stall_counter_ = &registry.counter(prefix + ".push_stalls");
      pop_stall_counter_ = &registry.counter(prefix + ".pop_stalls");
    }
  }

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Blocks while the channel is full. Returns false — and leaves `item`
  /// unconsumed on the channel — once the channel is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (count_ >= capacity_ && !closed_) {
      ++stats_.push_stalls;
      if (push_stall_counter_ != nullptr) push_stall_counter_->add(1);
      not_full_.wait(lock, [this] { return count_ < capacity_ || closed_; });
    }
    if (closed_) return false;
    ring_[(head_ + count_) % capacity_] = std::move(item);
    ++count_;
    note_push();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_ || count_ >= capacity_) return false;
    ring_[(head_ + count_) % capacity_] = std::move(item);
    ++count_;
    note_push();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks while the channel is empty. Returns nullopt once the channel
  /// is closed *and* drained — a close never loses queued items.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (count_ == 0 && !closed_) {
      ++stats_.pop_stalls;
      if (pop_stall_counter_ != nullptr) pop_stall_counter_->add(1);
      not_empty_.wait(lock, [this] { return count_ > 0 || closed_; });
    }
    if (count_ == 0) return std::nullopt;
    return take(lock);
  }

  /// Non-blocking pop; nullopt when empty (closed or not).
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (count_ == 0) return std::nullopt;
    return take(lock);
  }

  /// Wakes every blocked producer and consumer. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

  ChannelStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Serializes queued items (oldest first) + accounting. `save_item` is
  /// invoked as `save_item(writer, item)` per queued element — the channel
  /// is a template, so element encoding belongs to the owner.
  template <typename SaveItem>
  void save_state(snapshot::StateWriter& w, SaveItem&& save_item) const {
    std::lock_guard<std::mutex> lock(mutex_);
    w.u64(capacity_);
    w.b(closed_);
    w.u32(static_cast<std::uint32_t>(count_));
    for (std::size_t i = 0; i < count_; ++i) {
      save_item(w, ring_[(head_ + i) % capacity_]);
    }
    w.u64(stats_.pushes);
    w.u64(stats_.pops);
    w.u64(stats_.push_stalls);
    w.u64(stats_.pop_stalls);
    w.u64(stats_.max_depth);
  }

  /// Restores queued items into an *empty* channel of the same capacity;
  /// `load_item` is invoked as `T load_item(reader)` per element. Capacity
  /// mismatch, a non-empty target or an element count beyond the capacity
  /// mark the reader failed.
  template <typename LoadItem>
  void load_state(snapshot::StateReader& r, LoadItem&& load_item) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t capacity = r.u64();
    const bool was_closed = r.b();
    const std::uint32_t queued = r.u32();
    if (!r.ok() || capacity != capacity_ || count_ != 0 ||
        queued > capacity_) {
      r.fail();
      return;
    }
    for (std::uint32_t i = 0; i < queued; ++i) {
      ring_[(head_ + count_) % capacity_] = load_item(r);
      if (!r.ok()) return;
      ++count_;
    }
    closed_ = was_closed;
    stats_.pushes = r.u64();
    stats_.pops = r.u64();
    stats_.push_stalls = r.u64();
    stats_.pop_stalls = r.u64();
    stats_.max_depth = static_cast<std::size_t>(r.u64());
    if (depth_gauge_ != nullptr) depth_gauge_->set(static_cast<double>(count_));
  }

 private:
  void note_push() {
    ++stats_.pushes;
    stats_.max_depth = std::max(stats_.max_depth, count_);
    if (depth_gauge_ != nullptr) {
      depth_gauge_->set(static_cast<double>(count_));
    }
  }

  std::optional<T> take(std::unique_lock<std::mutex>& lock) {
    std::optional<T> item(std::move(ring_[head_]));
    head_ = (head_ + 1) % capacity_;
    --count_;
    ++stats_.pops;
    if (depth_gauge_ != nullptr) {
      depth_gauge_->set(static_cast<double>(count_));
    }
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;   // analyze:transient - sync primitive
  std::condition_variable not_empty_;  // analyze:transient - sync primitive
  std::vector<T> ring_;       // fixed ring; moved-from slots stay constructed
  std::size_t head_ = 0;      // index of the oldest queued item
  std::size_t count_ = 0;     // queued items
  bool closed_ = false;
  ChannelStats stats_{};
  // analyze:transient - obs handles, re-resolved at construction
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Counter* push_stall_counter_ = nullptr;  // analyze:transient - obs handle
  obs::Counter* pop_stall_counter_ = nullptr;   // analyze:transient - obs handle
};

}  // namespace biosense
