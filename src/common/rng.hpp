// Deterministic random number generation for reproducible simulations.
//
// All stochastic components in biosense (noise sources, mismatch samplers,
// workload generators) draw from an explicitly seeded `Rng` so that every
// test, example and benchmark is bit-reproducible across runs. The engine
// is xoshiro256++, a small, fast, high-quality generator; distributions are
// implemented locally rather than via <random> so results do not depend on
// the standard library implementation.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace biosense {

/// Complete serialized state of an `Rng` — the four xoshiro256++ words plus
/// the Box-Muller cache. `restore()`-ing this state reproduces the exact
/// draw sequence of the saved generator; every snapshot/resume guarantee in
/// the codebase bottoms out on this round trip (see test_rng_roundtrip).
struct RngState {
  std::array<std::uint64_t, 4> s{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// xoshiro256++ pseudo-random generator with deterministic seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine from a single 64-bit value via splitmix64, which
  /// guarantees a well-mixed nonzero state for any seed (including 0).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Raw 64-bit draw.
  std::uint64_t next_u64();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sigma);

  /// Exponential with given rate lambda (mean 1/lambda).
  double exponential(double lambda);

  /// Poisson-distributed count with given mean. Uses Knuth's method for
  /// small means and a normal approximation above 64 (adequate for the
  /// shot-noise and molecule-count use cases in this library).
  std::int64_t poisson(double mean);

  /// Bernoulli trial with probability p.
  bool bernoulli(double p);

  /// Log-uniform value in [lo, hi]; lo, hi must be positive.
  double log_uniform(double lo, double hi);

  /// Forks an independent child generator. The child stream is decorrelated
  /// from the parent by hashing a fresh draw, so per-pixel generators can be
  /// derived from one master seed.
  Rng fork();

  /// Captures the full generator state (engine words + normal cache).
  RngState state() const { return {state_, cached_normal_, has_cached_normal_}; }

  /// Restores a state captured by `state()`; subsequent draws continue the
  /// saved sequence exactly, including a pending cached Box-Muller value.
  void restore(const RngState& st) {
    state_ = st.s;
    cached_normal_ = st.cached_normal;
    has_cached_normal_ = st.has_cached_normal;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace biosense
