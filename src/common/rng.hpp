// Deterministic random number generation for reproducible simulations.
//
// All stochastic components in biosense (noise sources, mismatch samplers,
// workload generators) draw from an explicitly seeded `Rng` so that every
// test, example and benchmark is bit-reproducible across runs. The engine
// is xoshiro256++, a small, fast, high-quality generator; distributions are
// implemented locally rather than via <random> so results do not depend on
// the standard library implementation.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/units.hpp"

namespace biosense {

namespace detail {
inline std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace detail

/// Complete serialized state of an `Rng` — the four xoshiro256++ words plus
/// the Box-Muller cache. `restore()`-ing this state reproduces the exact
/// draw sequence of the saved generator; every snapshot/resume guarantee in
/// the codebase bottoms out on this round trip (see test_rng_roundtrip).
struct RngState {
  std::array<std::uint64_t, 4> s{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;
};

/// xoshiro256++ pseudo-random generator with deterministic seeding.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine from a single 64-bit value via splitmix64, which
  /// guarantees a well-mixed nonzero state for any seed (including 0).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Raw 64-bit draw. Inline (with uniform/normal below) because the SoA
  /// pixel kernel draws ~12 normals per pixel per frame; the arithmetic is
  /// identical to the previous out-of-line definition, so draw streams are
  /// unchanged bit for bit.
  std::uint64_t next_u64() {
    const std::uint64_t result =
        detail::rotl64(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = detail::rotl64(state_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * constants::kPi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  double normal(double mean, double sigma) { return mean + sigma * normal(); }

  /// Exponential with given rate lambda (mean 1/lambda).
  double exponential(double lambda);

  /// Poisson-distributed count with given mean. Uses Knuth's method for
  /// small means and a normal approximation above 64 (adequate for the
  /// shot-noise and molecule-count use cases in this library).
  std::int64_t poisson(double mean);

  /// Bernoulli trial with probability p.
  bool bernoulli(double p);

  /// Log-uniform value in [lo, hi]; lo, hi must be positive.
  double log_uniform(double lo, double hi);

  /// Forks an independent child generator. The child stream is decorrelated
  /// from the parent by hashing a fresh draw, so per-pixel generators can be
  /// derived from one master seed.
  Rng fork();

  /// Captures the full generator state (engine words + normal cache).
  RngState state() const { return {state_, cached_normal_, has_cached_normal_}; }

  /// Restores a state captured by `state()`; subsequent draws continue the
  /// saved sequence exactly, including a pending cached Box-Muller value.
  void restore(const RngState& st) {
    state_ = st.s;
    cached_normal_ = st.cached_normal;
    has_cached_normal_ = st.has_cached_normal;
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace biosense
