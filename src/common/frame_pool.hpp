// Fixed-capacity recycling pool for the streaming pipeline's frame buffers.
//
// The pool owns at most `capacity` objects, created lazily on first use and
// recycled forever after: steady-state acquisition is a free-list pop, so a
// pipeline that keeps its buffers size-stable (vector::assign never shrinks
// capacity) performs zero heap allocation per frame once warm. The stats
// make that claim checkable — `allocations` counts object creations (the
// warm-up cost, bounded by the capacity), `hits` counts recycled handouts,
// and `exhaustion_stalls` counts the blocking episodes where every buffer
// was in flight (the pool's backpressure signal).
//
// Handles are RAII: destroying (or `release()`-ing) a handle returns the
// buffer to the free list without destroying the object, so its heap
// storage survives for the next frame. The pool must outlive its handles.
//
// Shutdown: `close()` wakes blocked acquirers, which then receive empty
// handles — the pipeline's abort path. Releases after close still recycle
// quietly so in-flight handles unwind safely.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "snapshot/state_io.hpp"

namespace biosense {

/// Snapshot of one pool's recycling and backpressure accounting.
struct FramePoolStats {
  std::uint64_t acquires = 0;           // successful handouts
  std::uint64_t allocations = 0;        // objects created (pool misses)
  std::uint64_t hits = 0;               // recycled handouts
  std::uint64_t exhaustion_stalls = 0;  // blocking episodes, pool empty
};

template <typename T>
class FramePool {
 public:
  class Handle {
   public:
    Handle() = default;
    Handle(FramePool* pool, std::unique_ptr<T> object)
        : pool_(pool), object_(std::move(object)) {}
    Handle(Handle&& other) noexcept
        : pool_(other.pool_), object_(std::move(other.object_)) {
      other.pool_ = nullptr;
    }
    Handle& operator=(Handle&& other) noexcept {
      if (this != &other) {
        release();
        pool_ = other.pool_;
        object_ = std::move(other.object_);
        other.pool_ = nullptr;
      }
      return *this;
    }
    Handle(const Handle&) = delete;
    Handle& operator=(const Handle&) = delete;
    ~Handle() { release(); }

    explicit operator bool() const { return object_ != nullptr; }
    T& operator*() const { return *object_; }
    T* operator->() const { return object_.get(); }
    T* get() const { return object_.get(); }

    /// Returns the buffer to the pool now (destructor equivalent).
    void release() {
      if (pool_ != nullptr && object_ != nullptr) {
        pool_->recycle(std::move(object_));
      }
      pool_ = nullptr;
      object_.reset();
    }

   private:
    FramePool* pool_ = nullptr;
    std::unique_ptr<T> object_;
  };

  /// A zero capacity is clamped to 1. `name`, when non-empty, registers
  /// `<name>.available` (gauge) and `<name>.exhaustion_stalls` (counter)
  /// with the global registry.
  explicit FramePool(std::size_t capacity, const std::string& name = {})
      : capacity_(capacity == 0 ? 1 : capacity) {
    free_.reserve(capacity_);
    if (!name.empty()) {
      auto& registry = obs::Registry::global();
      available_gauge_ = &registry.gauge(name + ".available");
      stall_counter_ = &registry.counter(name + ".exhaustion_stalls");
    }
  }

  FramePool(const FramePool&) = delete;
  FramePool& operator=(const FramePool&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Blocks while every buffer is in flight. Returns an empty handle once
  /// the pool is closed.
  Handle acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (free_.empty() && created_ >= capacity_ && !closed_) {
      ++stats_.exhaustion_stalls;
      if (stall_counter_ != nullptr) stall_counter_->add(1);
      available_.wait(lock, [this] {
        return !free_.empty() || created_ < capacity_ || closed_;
      });
    }
    return take(lock);
  }

  /// Non-blocking acquire; empty handle when exhausted or closed.
  Handle try_acquire() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (free_.empty() && created_ >= capacity_) return Handle{};
    return take(lock);
  }

  /// Wakes blocked acquirers; they and all later acquires receive empty
  /// handles. In-flight handles still recycle safely. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    available_.notify_all();
  }

  /// Reopens a closed pool for the next run. Callable only once every
  /// handle has been returned (the owning pipeline has fully unwound);
  /// recycled buffers are kept, so the warm-up cost is not paid again.
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    require(free_.size() == created_,
            "FramePool: reset with handles still in flight");
    closed_ = false;
  }

  std::size_t available() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return free_.size() + (capacity_ - created_);
  }

  FramePoolStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Serializes the pool's accounting. Only legal on a quiesced pool
  /// (every handle returned) — frame *contents* are stage scratch, so a
  /// quiesced pool's state is exactly its capacity and stats.
  void save_state(snapshot::StateWriter& w) const {
    std::lock_guard<std::mutex> lock(mutex_);
    w.u64(capacity_);
    w.b(free_.size() == created_);  // quiesced marker, checked on load
    w.u64(stats_.acquires);
    w.u64(stats_.allocations);
    w.u64(stats_.hits);
    w.u64(stats_.exhaustion_stalls);
  }

  /// Restores accounting into a pool of the same capacity. A capacity
  /// mismatch or a snapshot taken mid-flight marks the reader failed.
  void load_state(snapshot::StateReader& r) {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t capacity = r.u64();
    const bool quiesced = r.b();
    if (!r.ok() || capacity != capacity_ || !quiesced ||
        free_.size() != created_) {
      r.fail();
      return;
    }
    stats_.acquires = r.u64();
    stats_.allocations = r.u64();
    stats_.hits = r.u64();
    stats_.exhaustion_stalls = r.u64();
  }

 private:
  friend class Handle;

  Handle take(std::unique_lock<std::mutex>& lock) {
    if (closed_) return Handle{};
    if (!free_.empty()) {
      std::unique_ptr<T> object = std::move(free_.back());
      free_.pop_back();
      ++stats_.acquires;
      ++stats_.hits;
      update_gauge();
      lock.unlock();
      return Handle(this, std::move(object));
    }
    if (created_ < capacity_) {
      ++created_;
      ++stats_.acquires;
      ++stats_.allocations;
      update_gauge();
      lock.unlock();
      return Handle(this, std::make_unique<T>());
    }
    return Handle{};  // raced with another acquirer after the wait
  }

  void recycle(std::unique_ptr<T> object) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      free_.push_back(std::move(object));
      update_gauge();
    }
    available_.notify_one();
  }

  void update_gauge() {
    if (available_gauge_ != nullptr) {
      available_gauge_->set(
          static_cast<double>(free_.size() + (capacity_ - created_)));
    }
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable available_;  // analyze:transient - sync primitive
  std::vector<std::unique_ptr<T>> free_;
  std::size_t created_ = 0;
  bool closed_ = false;  // analyze:transient - teardown flag; a restored pool starts open
  FramePoolStats stats_{};
  obs::Gauge* available_gauge_ = nullptr;  // analyze:transient - obs handle
  obs::Counter* stall_counter_ = nullptr;  // analyze:transient - obs handle
};

}  // namespace biosense
