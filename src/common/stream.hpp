// Streaming consumer interface: the pipeline-facing replacement for
// "return the whole vector".
//
// A `StreamSink<T>` receives items one at a time, in order, on a single
// thread (the pipeline's sink stage delivers in frame order regardless of
// how many workers ran upstream). Items arrive by const reference and are
// recycled after the call returns — a sink that wants to keep one copies
// it. `CollectSink` is exactly that collect-all compat behaviour, and is
// what the retained `record()`/`run()` wrappers are implemented with.
#pragma once

#include <functional>
#include <utility>
#include <vector>

namespace biosense {

template <typename T>
class StreamSink {
 public:
  virtual ~StreamSink() = default;

  /// One item, delivered in stream order. The referenced storage is reused
  /// after the call returns; copy to retain.
  virtual void on_item(const T& item) = 0;

  /// End of stream: called exactly once, after the last item, on the same
  /// thread that delivered it. Not called when the producer throws.
  virtual void on_end() {}
};

/// Collect-all sink: the batch compatibility path. Copies every item.
template <typename T>
class CollectSink final : public StreamSink<T> {
 public:
  void on_item(const T& item) override { items_.push_back(item); }

  std::vector<T> take() { return std::move(items_); }
  const std::vector<T>& items() const { return items_; }

 private:
  std::vector<T> items_;
};

/// Adapter for ad-hoc consumers (examples, tests) without a sink subclass.
template <typename T>
class FunctionSink final : public StreamSink<T> {
 public:
  explicit FunctionSink(std::function<void(const T&)> fn)
      : fn_(std::move(fn)) {}

  void on_item(const T& item) override { fn_(item); }

 private:
  std::function<void(const T&)> fn_;
};

}  // namespace biosense
