// Cache-line-aligned contiguous storage for plane-structured hot-path state.
//
// The SoA pixel engine (neurochip/pixel_bank.hpp, DESIGN.md §16) keeps
// per-pixel state in contiguous planes that parallel capture workers write
// in interleaved runs: output channel `ch` owns rows [8ch, 8ch+8) of every
// column, i.e. one 8-element run per column of a column-major plane.
// Aligning each plane base to the cache-line size makes every such run
// start on a line boundary (8 doubles = 64 bytes), so two channel workers
// never store to the same cache line — the false-sharing fix behind the
// multi-thread scaling work.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace biosense {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Minimal stateless aligned allocator (C++17 aligned operator new).
template <typename T, std::size_t Align = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T),
                "AlignedAllocator: alignment below the type's natural one");

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

/// A contiguous cache-line-aligned array — the storage type of every
/// PixelBank / MosfetSpan plane.
template <typename T>
using Plane = std::vector<T, AlignedAllocator<T>>;

}  // namespace biosense
