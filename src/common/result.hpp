// Expected-style result type: the uniform error-signaling convention for
// fallible host/readout APIs.
//
// Before this type the host stack mixed three conventions — `bool` returns
// (auto_calibrate), `std::optional` (acquire_site, decode_*) and out-params
// with status structs — so callers could not tell *why* a transaction
// failed without consulting a side channel. `Result<T, E>` carries either
// the value or a typed error, costs one discriminant next to the larger of
// the two payloads, and deliberately mimics the `std::optional` access
// surface (`operator bool`, `has_value`, `*`, `->`) so migrating an
// optional-returning API is a signature change, not a call-site rewrite.
//
// Conventions (documented in DESIGN.md §12 and README "API style"):
//  * New fallible APIs in src/host/ must return Result — `bool` returns
//    are banned there by lint rule 7.
//  * E is a cheap enum (`dnachip::ChipError`, `host::HostStatus`); the
//    error accessor is always valid to call and returns the success
//    sentinel (typically `E{}`) when the result holds a value.
//  * Steady-state paths stay exception-free: `value()` on an error is a
//    programming bug and throws ConfigError like any violated precondition.
#pragma once

#include <utility>

#include "common/error.hpp"

namespace biosense {

/// Tag type for constructing an error-holding Result when T and E would
/// otherwise be ambiguous (e.g. Result<int, int> in tests).
struct ErrTag {};
inline constexpr ErrTag kErr{};

template <typename T, typename E>
class [[nodiscard]] Result {
 public:
  /// Success. Implicit on purpose: `return 3.2;` reads like the optional
  /// code it replaces.
  Result(T value) : value_(std::move(value)), ok_(true) {}  // NOLINT

  /// Failure carrying a typed error.
  Result(ErrTag, E error) : error_(std::move(error)), ok_(false) {}

  static Result ok(T value) { return Result(std::move(value)); }
  static Result err(E error) { return Result(kErr, std::move(error)); }

  bool has_value() const { return ok_; }
  explicit operator bool() const { return ok_; }

  T& operator*() & { return value_; }
  const T& operator*() const& { return value_; }
  T&& operator*() && { return std::move(value_); }
  T* operator->() { return &value_; }
  const T* operator->() const { return &value_; }

  /// Checked access: a violated precondition, not a recoverable path.
  T& value() & {
    require(ok_, "Result::value() called on an error");
    return value_;
  }
  const T& value() const& {
    require(ok_, "Result::value() called on an error");
    return value_;
  }

  T value_or(T fallback) const {
    return ok_ ? value_ : std::move(fallback);
  }

  /// The error, or the success sentinel `E{}` when a value is held.
  E error() const { return ok_ ? E{} : error_; }

 private:
  // One of the two is active; both are cheap in this codebase (doubles,
  // small structs, enums), so a plain pair beats a union's complexity.
  T value_{};
  E error_{};
  bool ok_ = false;
};

/// Result<void, E>: success/failure with a typed reason but no payload —
/// the replacement for `bool` returns.
template <typename E>
class [[nodiscard]] Result<void, E> {
 public:
  Result() : ok_(true) {}
  Result(ErrTag, E error) : error_(std::move(error)), ok_(false) {}

  static Result ok() { return Result(); }
  static Result err(E error) { return Result(kErr, std::move(error)); }

  bool has_value() const { return ok_; }
  explicit operator bool() const { return ok_; }

  /// Checked no-op: throws on an error, like the primary template.
  void value() const { require(ok_, "Result::value() called on an error"); }

  E error() const { return ok_ ? E{} : error_; }

 private:
  E error_{};
  bool ok_ = false;
};

}  // namespace biosense
