// Small statistics toolkit used by tests and benchmark harnesses:
// streaming moments, percentiles, histograms and least-squares fits.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace biosense {

/// Streaming mean/variance accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of an ordinary least-squares line fit y = slope*x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  /// Maximum absolute deviation of any point from the fitted line.
  double max_abs_residual = 0.0;
};

/// Least-squares fit of y against x. Requires x.size() == y.size() >= 2.
LinearFit linear_fit(std::span<const double> x, std::span<const double> y);

/// p-th percentile (p in [0,100]) by linear interpolation of the sorted
/// sample. The input is copied, not modified.
double percentile(std::span<const double> values, double p);

double mean(std::span<const double> values);
double stddev(std::span<const double> values);

/// Root-mean-square of a sample.
double rms(std::span<const double> values);

/// Median absolute deviation, scaled to estimate sigma for a normal
/// distribution (factor 1.4826). Robust noise estimator used by the spike
/// detector.
double mad_sigma(std::span<const double> values);

/// Fixed-bin histogram over [lo, hi); values outside are clamped into the
/// first/last bin.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  std::size_t total() const { return total_; }
  /// Center value of bin i.
  double bin_center(std::size_t i) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace biosense
