// Zero-overhead compile-time dimensional analysis.
//
// Every physical quantity that crosses a public API or config surface in
// biosense is a `Quantity<Dim>`: a `double` wrapped in a type that carries
// an integer exponent vector over an electrical basis (current A, voltage
// V, time s, length m, amount-concentration M). Arithmetic derives the
// correct dimensions at compile time, so assigning millivolts to a current
// field, adding volts to farads, or passing a frequency where a time is
// expected is a *compile error*, not a silently corrupted figure.
//
//     i2f::I2fConfig cfg;
//     cfg.c_int = 140.0_fF;        // Capacitance — OK
//     cfg.c_int = 0.7_V;           // error: no conversion V -> F
//     cfg.delta_v().value()        // explicit escape hatch to raw double
//
// Design rules:
//  * storage is exactly one double (`static_assert`ed below): the wrapper
//    vanishes at -O1 and the hot loops that unwrap with `.value()` at the
//    boundary compile to the same code as before;
//  * construction from and conversion to `double` are explicit — the only
//    implicit arithmetic is dimension-checked;
//  * a fully cancelled dimension (`Voltage / Voltage`) decays to plain
//    `double`, so ratios and gains stay ergonomic;
//  * everything is constexpr/noexcept so quantities work in constant
//    expressions, default member initializers and static_asserts.
//
// The basis is electrical rather than strict SI (volts instead of kg·m²/
// (A·s³)) so derived electrical units stay small:
//     F = A·s/V    Ω = V/A    Hz = 1/s    C (charge) = A·s    J = A·V·s
#pragma once

namespace biosense {

/// Integer dimension exponents over the {A, V, s, m, M} basis.
struct Dim {
  int current = 0;   // ampere exponent
  int voltage = 0;   // volt exponent
  int time = 0;      // second exponent
  int length = 0;    // meter exponent
  int amount = 0;    // molar-concentration exponent

  friend constexpr bool operator==(const Dim&, const Dim&) = default;
};

constexpr Dim operator+(Dim a, Dim b) {
  return {a.current + b.current, a.voltage + b.voltage, a.time + b.time,
          a.length + b.length, a.amount + b.amount};
}

constexpr Dim operator-(Dim a, Dim b) {
  return {a.current - b.current, a.voltage - b.voltage, a.time - b.time,
          a.length - b.length, a.amount - b.amount};
}

inline constexpr Dim kDimensionless{};

template <Dim D>
class Quantity {
 public:
  constexpr Quantity() = default;
  constexpr explicit Quantity(double v) noexcept : v_(v) {}

  /// Raw SI value — the one escape hatch to untyped arithmetic. Use at the
  /// boundary of hot inner loops, never to launder a unit mismatch.
  constexpr double value() const noexcept { return v_; }

  /// Value expressed in `unit` (e.g. `v.in(1.0_mV)` -> millivolts).
  constexpr double in(Quantity unit) const noexcept { return v_ / unit.v_; }

  static constexpr Dim dim() noexcept { return D; }

  constexpr Quantity operator-() const noexcept { return Quantity(-v_); }
  constexpr Quantity operator+() const noexcept { return *this; }

  constexpr Quantity& operator+=(Quantity o) noexcept {
    v_ += o.v_;
    return *this;
  }
  constexpr Quantity& operator-=(Quantity o) noexcept {
    v_ -= o.v_;
    return *this;
  }
  constexpr Quantity& operator*=(double s) noexcept {
    v_ *= s;
    return *this;
  }
  constexpr Quantity& operator/=(double s) noexcept {
    v_ /= s;
    return *this;
  }

  friend constexpr bool operator==(Quantity, Quantity) = default;
  friend constexpr bool operator<(Quantity a, Quantity b) noexcept {
    return a.v_ < b.v_;
  }
  friend constexpr bool operator>(Quantity a, Quantity b) noexcept {
    return a.v_ > b.v_;
  }
  friend constexpr bool operator<=(Quantity a, Quantity b) noexcept {
    return a.v_ <= b.v_;
  }
  friend constexpr bool operator>=(Quantity a, Quantity b) noexcept {
    return a.v_ >= b.v_;
  }

 private:
  double v_ = 0.0;
};

namespace detail {

/// Wraps a raw value in Quantity<D>, decaying to plain double when every
/// exponent cancelled.
template <Dim D>
constexpr auto make_quantity(double v) noexcept {
  if constexpr (D == kDimensionless) {
    return v;
  } else {
    return Quantity<D>(v);
  }
}

}  // namespace detail

// --- dimension-deriving arithmetic -----------------------------------------

template <Dim D>
constexpr Quantity<D> operator+(Quantity<D> a, Quantity<D> b) noexcept {
  return Quantity<D>(a.value() + b.value());
}

template <Dim D>
constexpr Quantity<D> operator-(Quantity<D> a, Quantity<D> b) noexcept {
  return Quantity<D>(a.value() - b.value());
}

template <Dim A, Dim B>
constexpr auto operator*(Quantity<A> a, Quantity<B> b) noexcept {
  return detail::make_quantity<A + B>(a.value() * b.value());
}

template <Dim A, Dim B>
constexpr auto operator/(Quantity<A> a, Quantity<B> b) noexcept {
  return detail::make_quantity<A - B>(a.value() / b.value());
}

template <Dim D>
constexpr Quantity<D> operator*(Quantity<D> a, double s) noexcept {
  return Quantity<D>(a.value() * s);
}

template <Dim D>
constexpr Quantity<D> operator*(double s, Quantity<D> a) noexcept {
  return Quantity<D>(s * a.value());
}

template <Dim D>
constexpr Quantity<D> operator/(Quantity<D> a, double s) noexcept {
  return Quantity<D>(a.value() / s);
}

template <Dim D>
constexpr auto operator/(double s, Quantity<D> a) noexcept {
  return detail::make_quantity<kDimensionless - D>(s / a.value());
}

// --- named dimensions -------------------------------------------------------

namespace dim {

inline constexpr Dim kCurrent{1, 0, 0, 0, 0};
inline constexpr Dim kVoltage{0, 1, 0, 0, 0};
inline constexpr Dim kTime{0, 0, 1, 0, 0};
inline constexpr Dim kLength{0, 0, 0, 1, 0};
inline constexpr Dim kConcentration{0, 0, 0, 0, 1};
inline constexpr Dim kFrequency{0, 0, -1, 0, 0};
inline constexpr Dim kCapacitance{1, -1, 1, 0, 0};   // F = A*s/V
inline constexpr Dim kResistance{-1, 1, 0, 0, 0};    // Ohm = V/A
inline constexpr Dim kCharge{1, 0, 1, 0, 0};         // C = A*s
inline constexpr Dim kEnergy{1, 1, 1, 0, 0};         // J = A*V*s
inline constexpr Dim kPower{1, 1, 0, 0, 0};          // W = A*V
inline constexpr Dim kArea{0, 0, 0, 2, 0};           // m^2
inline constexpr Dim kDiffusivity{0, 0, -1, 2, 0};   // m^2/s
inline constexpr Dim kConductance{1, -1, 0, 0, 0};   // S = A/V (gm)
inline constexpr Dim kVoltagePsd{0, 2, 1, 0, 0};     // V^2/Hz = V^2*s
inline constexpr Dim kVoltageSq{0, 2, 0, 0, 0};      // V^2 (flicker kf)
inline constexpr Dim kCurrentPsd{2, 0, 1, 0, 0};     // A^2/Hz = A^2*s
inline constexpr Dim kMolarEnergy{1, 1, 1, 0, -1};   // J/mol basis proxy

}  // namespace dim

using Current = Quantity<dim::kCurrent>;
using Voltage = Quantity<dim::kVoltage>;
using Time = Quantity<dim::kTime>;
using Length = Quantity<dim::kLength>;
using Concentration = Quantity<dim::kConcentration>;
using Frequency = Quantity<dim::kFrequency>;
using Capacitance = Quantity<dim::kCapacitance>;
using Resistance = Quantity<dim::kResistance>;
using Charge = Quantity<dim::kCharge>;
using Energy = Quantity<dim::kEnergy>;
using Power = Quantity<dim::kPower>;
using Area = Quantity<dim::kArea>;
using Diffusivity = Quantity<dim::kDiffusivity>;
using Conductance = Quantity<dim::kConductance>;
using VoltagePsd = Quantity<dim::kVoltagePsd>;
using VoltageSq = Quantity<dim::kVoltageSq>;
using CurrentPsd = Quantity<dim::kCurrentPsd>;
using MolarEnergy = Quantity<dim::kMolarEnergy>;

// The wrapper must be free: exactly one double, trivially copyable, usable
// in constant expressions. Violations break the hot-loop parity guarantee.
static_assert(sizeof(Voltage) == sizeof(double));
static_assert(sizeof(Quantity<dim::kCapacitance>) == sizeof(double));
static_assert((1.0 / Time(2.0)).dim() == dim::kFrequency);
static_assert(Voltage(1.0) / Current(2.0) == Resistance(0.5));
static_assert(Capacitance(2.0) * Voltage(3.0) == Charge(6.0));
static_assert(Voltage(3.0) / Voltage(2.0) == 1.5);  // ratios decay to double

}  // namespace biosense
