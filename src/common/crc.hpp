// CRC-8 (polynomial 0x07, init 0x00) — the one checksum of the codebase.
//
// Introduced for the DNA chip's 6-pin serial frames, later reused by the
// fleet host-command protocol and the snapshot container. All three wire
// formats deliberately share this polynomial so a single implementation is
// the only code that ever touches a checksum; `dnachip::crc8` and
// `host::crc8` are aliases of these functions.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace biosense {

inline constexpr std::uint8_t kCrc8Poly = 0x07;

/// Streaming form: folds `n` more bytes into a running CRC, so callers can
/// checksum non-contiguous ranges (e.g. a section header with its CRC byte
/// zeroed, followed by the payload) without concatenating them.
constexpr std::uint8_t crc8_update(std::uint8_t crc, const std::uint8_t* bytes,
                                   std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    crc ^= bytes[j];
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x80) ? static_cast<std::uint8_t>((crc << 1) ^ kCrc8Poly)
                         : static_cast<std::uint8_t>(crc << 1);
    }
  }
  return crc;
}

/// Allocation-free CRC-8 over a raw byte range (the hot-path variant).
constexpr std::uint8_t crc8(const std::uint8_t* bytes, std::size_t n) {
  return crc8_update(0x00, bytes, n);
}

/// Convenience overload for buffered callers.
inline std::uint8_t crc8(const std::vector<std::uint8_t>& bytes) {
  return crc8(bytes.data(), bytes.size());
}

}  // namespace biosense
