// Deterministic parallel execution engine.
//
// A small chunked thread pool behind a `parallel_for` primitive. Design
// rules, in order of priority:
//
//  1. Determinism: the pool never decides *what* is computed, only *where*.
//     Callers partition work into independent items (columns, channels,
//     sites, pixels) whose mutable state — including per-item RNG streams —
//     is owned by exactly one item, so results are bitwise-identical for
//     any thread count, including 1.
//  2. Serial fallback: with one thread (or one chunk) the body runs inline
//     on the caller with zero synchronization, so single-core behaviour and
//     debuggability are unchanged.
//  3. Re-entrancy: a `parallel_for` issued from inside a worker runs
//     serially instead of deadlocking, so library layers can parallelize
//     without coordinating with their callers.
//
// Thread count defaults to the hardware concurrency and can be overridden
// globally (`set_max_threads`) or by the BIOSENSE_THREADS environment
// variable — benches sweep it, tests pin it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace biosense {

/// Worker pool executing half-open index ranges in grain-sized chunks.
/// Chunks are claimed dynamically (work-stealing from a shared counter),
/// which balances uneven per-item cost without affecting results.
class ThreadPool {
 public:
  /// Creates a pool that runs jobs on `n_threads` threads total (the
  /// calling thread participates, so `n_threads - 1` workers are spawned).
  explicit ThreadPool(int n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads that execute a job (workers + caller), >= 1.
  int size() const { return n_threads_; }

  /// Runs `body(i)` for every i in [begin, end), distributing grain-sized
  /// chunks over the pool. Blocks until every index has been processed.
  /// The first exception thrown by any invocation is rethrown on the
  /// caller after the range completes or drains.
  void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                    const std::function<void(std::int64_t)>& body);

  /// The process-wide pool used by the free `parallel_for`. Sized by
  /// `set_max_threads`, the BIOSENSE_THREADS environment variable, or the
  /// hardware concurrency, in that order.
  static ThreadPool& global();

 private:
  struct Job {
    std::int64_t end = 0;
    std::int64_t grain = 1;
    const std::function<void(std::int64_t)>* body = nullptr;
  };

  void worker_loop();
  void run_chunks(const Job& job);

  int n_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  Job job_;
  std::uint64_t generation_ = 0;   // bumped per job; workers wait on it
  int active_workers_ = 0;         // workers still inside the current job
  bool shutdown_ = false;

  std::mutex error_mutex_;
  std::exception_ptr first_error_;
  std::atomic<std::int64_t> next_{0};  // next unclaimed index of the job
};

/// Threads used by the global pool (>= 1).
int max_threads();

/// True when the calling thread is executing inside a pool job — a nested
/// `parallel_for` would run serially. Long-lived stage loops (the streaming
/// pipeline) must check this and fall back to their stepwise serial path:
/// scheduling blocking stages through a serialized parallel_for would
/// deadlock, since no second stage ever starts.
bool inside_parallel_job();

/// Resizes the global pool to `n` threads (clamped to >= 1). Takes effect
/// immediately; intended for benches and determinism tests. Not safe to
/// call concurrently with a running `parallel_for`.
void set_max_threads(int n);

/// Runs `body(i)` for i in [begin, end) on the global pool. `grain` is the
/// number of consecutive indices a thread claims at once; use larger grains
/// for cheap bodies. Runs inline when the range fits one chunk, the pool
/// has one thread, or the caller is itself a pool worker.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& body,
                  std::int64_t grain = 1);

}  // namespace biosense
