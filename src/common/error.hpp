// Error type for configuration/construction failures.
//
// biosense follows the C++ Core Guidelines convention: exceptions signal
// violated preconditions or invalid configuration at construction time;
// steady-state simulation paths are noexcept-friendly and report physics
// through return values, never exceptions.
#pragma once

#include <stdexcept>
#include <string>

namespace biosense {

class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
  explicit ConfigError(const char* what) : std::runtime_error(what) {}
};

/// Throws ConfigError with `msg` when `cond` is false. Used to validate
/// user-supplied configuration structs in constructors.
///
/// The literal overload keeps `require` safe in steady-state hot paths:
/// a `const std::string&` parameter would heap-allocate the message on
/// every call, passing or not (one allocation per pixel in the capture
/// loop), so the string is only materialized when the check fails.
inline void require(bool cond, const char* msg) {
  if (!cond) throw ConfigError(msg);
}

inline void require(bool cond, const std::string& msg) {
  if (!cond) throw ConfigError(msg);
}

}  // namespace biosense
