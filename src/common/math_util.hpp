// Numeric helpers shared across modules: interpolation, root finding,
// dB conversions and a few ODE stepping primitives.
#pragma once

#include <cmath>
#include <functional>
#include <span>

namespace biosense {

/// Linear interpolation between a and b by t in [0,1].
constexpr double lerp(double a, double b, double t) { return a + (b - a) * t; }

/// Piecewise-linear interpolation of y(x) over sorted xs. Clamps outside the
/// table range.
double interp1(std::span<const double> xs, std::span<const double> ys, double x);

/// Bisection root find of f on [lo, hi]; requires a sign change. Returns the
/// midpoint after `iters` halvings (53 iterations reach double precision).
double bisect(const std::function<double(double)>& f, double lo, double hi,
              int iters = 60);

/// Power ratio to decibel, guarded against zero.
inline double to_db_power(double ratio) {
  return 10.0 * std::log10(ratio > 0 ? ratio : 1e-300);
}

/// Amplitude ratio to decibel.
inline double to_db_amplitude(double ratio) {
  return 20.0 * std::log10(ratio > 0 ? ratio : 1e-300);
}

/// One classic RK4 step for dy/dt = f(t, y) on a state vector stored in a
/// caller-provided buffer. `f` writes dy/dt into its output span.
void rk4_step(const std::function<void(double, std::span<const double>,
                                       std::span<double>)>& f,
              double t, double dt, std::span<double> y);

/// First-order low-pass tracking step: returns the new output of a single
/// pole with time constant tau driven by `input` for `dt`.
inline double one_pole_step(double state, double input, double dt, double tau) {
  if (tau <= 0.0) return input;
  const double a = std::exp(-dt / tau);
  return state * a + input * (1.0 - a);
}

/// True if |a-b| <= atol + rtol*max(|a|,|b|).
inline bool approx_equal(double a, double b, double rtol = 1e-9,
                         double atol = 0.0) {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

}  // namespace biosense
