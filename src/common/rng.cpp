#include "common/rng.hpp"

#include <cmath>

#include "common/units.hpp"

namespace biosense {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  has_cached_normal_ = false;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Unbiased rejection sampling (Lemire-style bound check kept simple).
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::exponential(double lambda) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

std::int64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate accuracy for
  // the large molecule/electron counts it is used for.
  const double draw = normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::log_uniform(double lo, double hi) {
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace biosense
