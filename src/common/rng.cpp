#include "common/rng.hpp"

#include <cmath>

#include "common/units.hpp"

namespace biosense {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  // Unbiased rejection sampling (Lemire-style bound check kept simple).
  const std::uint64_t limit = ~0ULL - (~0ULL % span);
  std::uint64_t draw = next_u64();
  while (draw >= limit) draw = next_u64();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * constants::kPi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double sigma) { return mean + sigma * normal(); }

double Rng::exponential(double lambda) {
  double u = uniform();
  while (u <= 0.0) u = uniform();
  return -std::log(u) / lambda;
}

std::int64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean < 64.0) {
    const double limit = std::exp(-mean);
    std::int64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate accuracy for
  // the large molecule/electron counts it is used for.
  const double draw = normal(mean, std::sqrt(mean));
  return draw < 0.0 ? 0 : static_cast<std::int64_t>(draw + 0.5);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

double Rng::log_uniform(double lo, double hi) {
  return std::exp(uniform(std::log(lo), std::log(hi)));
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace biosense
