#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace biosense {

namespace {

std::string cell_to_string(const Cell& c) {
  if (const auto* s = std::get_if<std::string>(&c)) return *s;
  char buf[64];
  if (const auto* d = std::get_if<double>(&c)) {
    std::snprintf(buf, sizeof(buf), "%.6g", *d);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld", std::get<long long>(c));
  }
  return buf;
}

}  // namespace

void Table::add_row(std::vector<Cell> row) {
  if (!columns_.empty() && row.size() != columns_.size()) {
    throw std::invalid_argument("Table::add_row: row width != column count");
  }
  rows_.push_back(std::move(row));
}

void Table::print(std::ostream& os) const {
  std::vector<std::vector<std::string>> text;
  text.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const auto& c : row) r.push_back(cell_to_string(c));
    text.push_back(std::move(r));
  }
  std::vector<std::size_t> widths(columns_.size(), 0);
  for (std::size_t i = 0; i < columns_.size(); ++i) widths[i] = columns_[i].size();
  for (const auto& r : text) {
    for (std::size_t i = 0; i < r.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], r[i].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      os << (i == 0 ? "" : "  ");
      os << r[i];
      if (i < widths.size()) {
        for (std::size_t pad = r[i].size(); pad < widths[i]; ++pad) os << ' ';
      }
    }
    os << '\n';
  };
  if (!columns_.empty()) {
    print_row(columns_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i ? 2 : 0);
    os << std::string(total, '-') << '\n';
  }
  for (const auto& r : text) print_row(r);
  for (const auto& n : notes_) os << "  note: " << n << '\n';
  os << '\n';
}

void Table::write_csv(std::ostream& os) const {
  auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    os << (i ? "," : "") << escape(columns_[i]);
  }
  if (!columns_.empty()) os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i ? "," : "") << escape(cell_to_string(row[i]));
    }
    os << '\n';
  }
}

std::string si_format(double value, const std::string& unit, int digits) {
  static constexpr struct {
    double scale;
    const char* prefix;
  } kPrefixes[] = {
      {1e9, "G"},  {1e6, "M"},  {1e3, "k"},  {1.0, ""},    {1e-3, "m"},
      {1e-6, "u"}, {1e-9, "n"}, {1e-12, "p"}, {1e-15, "f"}, {1e-18, "a"},
  };
  if (value == 0.0) return "0 " + unit;
  const double mag = std::abs(value);
  for (const auto& p : kPrefixes) {
    if (mag >= p.scale * 0.9995) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.*g %s%s", digits, value / p.scale,
                    p.prefix, unit.c_str());
      return buf;
    }
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g %s", digits, value, unit.c_str());
  return buf;
}

}  // namespace biosense
