#include "common/math_util.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace biosense {

double interp1(std::span<const double> xs, std::span<const double> ys, double x) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw std::invalid_argument("interp1: need equal non-empty tables");
  }
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const auto i = static_cast<std::size_t>(it - xs.begin());
  const double t = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
  return lerp(ys[i - 1], ys[i], t);
}

double bisect(const std::function<double(double)>& f, double lo, double hi,
              int iters) {
  double flo = f(lo);
  const double fhi = f(hi);
  if (flo == 0.0) return lo;
  if (fhi == 0.0) return hi;
  if ((flo > 0.0) == (fhi > 0.0)) {
    throw std::invalid_argument("bisect: no sign change on interval");
  }
  for (int i = 0; i < iters; ++i) {
    const double mid = 0.5 * (lo + hi);
    const double fm = f(mid);
    if ((fm > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fm;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

void rk4_step(const std::function<void(double, std::span<const double>,
                                       std::span<double>)>& f,
              double t, double dt, std::span<double> y) {
  const std::size_t n = y.size();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);

  f(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k1[i];
  f(t + 0.5 * dt, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * dt * k2[i];
  f(t + 0.5 * dt, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + dt * k3[i];
  f(t + dt, tmp, k4);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] += dt / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
  }
}

}  // namespace biosense
