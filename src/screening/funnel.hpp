// Drug-screening process funnel (Fig. 1).
//
// The paper motivates CMOS biosensor arrays with the drug-development
// pipeline: millions of compounds enter molecular-based screening, the
// survivors proceed to cell-based assays, then animal tests, then clinical
// trials. Moving left to right, datapoints/day falls and cost/datapoint
// rises by orders of magnitude — so the quality (false-positive /
// false-negative rates) of the cheap early assays dominates the total cost
// of finding a drug. This module models that funnel so the chip-level
// detection statistics measured elsewhere in the library can be priced in
// at pipeline scale.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace biosense::screening {

struct StageParams {
  std::string name;
  double cost_per_datapoint = 1.0;   // currency units
  double datapoints_per_day = 1e5;
  /// Probability the assay flags an inactive compound as active.
  double false_positive_rate = 0.01;
  /// Probability the assay misses an active compound.
  double false_negative_rate = 0.05;
};

struct FunnelConfig {
  std::size_t library_size = 1'000'000;
  /// Fraction of the library that is genuinely active.
  double true_active_fraction = 1e-4;
  std::vector<StageParams> stages;  // executed in order

  /// The paper's four-stage pipeline with representative cost/throughput
  /// gradients (each stage ~30-100x more expensive and slower per
  /// datapoint than the previous).
  static FunnelConfig standard_pipeline();
};

struct StageOutcome {
  std::string name;
  std::size_t tested = 0;
  std::size_t passed = 0;
  std::size_t true_actives_in = 0;
  std::size_t true_actives_out = 0;
  double cost = 0.0;
  double days = 0.0;
};

struct FunnelResult {
  std::vector<StageOutcome> stages;
  double total_cost = 0.0;
  double total_days = 0.0;       // assuming stages run sequentially
  std::size_t final_candidates = 0;
  std::size_t final_true_actives = 0;

  /// Cost per surviving true active (infinite if none survive).
  double cost_per_hit() const;
};

class ScreeningFunnel {
 public:
  ScreeningFunnel(FunnelConfig config, Rng rng);

  /// Runs the whole library through the pipeline once.
  FunnelResult run();

  const FunnelConfig& config() const { return config_; }

 private:
  FunnelConfig config_;
  Rng rng_;
};

/// Distributional view over repeated funnel runs (assays are stochastic, so
/// programme cost and hit count are random variables).
struct FunnelStatistics {
  int runs = 0;
  double cost_mean = 0.0;
  double cost_p10 = 0.0;
  double cost_p90 = 0.0;
  double hits_mean = 0.0;
  double hits_min = 0.0;
  /// Fraction of runs that ended with zero surviving true actives.
  double failure_probability = 0.0;
};

/// Monte Carlo over `runs` independent funnel executions.
FunnelStatistics monte_carlo_funnel(const FunnelConfig& config, int runs,
                                    Rng rng);

/// Builds a stage from a measured confusion matrix (e.g. from a chip
/// simulation): false-positive/negative rates with Laplace smoothing.
StageParams stage_from_confusion(std::string name, double cost_per_datapoint,
                                 double datapoints_per_day,
                                 std::size_t false_positives,
                                 std::size_t true_negatives,
                                 std::size_t false_negatives,
                                 std::size_t true_positives);

}  // namespace biosense::screening
