#include "screening/funnel.hpp"

#include <algorithm>
#include <cmath>
#include <vector>
#include <limits>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace biosense::screening {

FunnelConfig FunnelConfig::standard_pipeline() {
  FunnelConfig cfg;
  cfg.stages = {
      {"molecular-based", 0.1, 100000.0, 0.02, 0.05},
      {"cell-based", 5.0, 2000.0, 0.01, 0.05},
      {"animal tests", 5000.0, 10.0, 0.005, 0.10},
      {"clinical trials", 5e6, 0.05, 0.001, 0.10},
  };
  return cfg;
}

ScreeningFunnel::ScreeningFunnel(FunnelConfig config, Rng rng)
    : config_(std::move(config)), rng_(rng) {
  require(!config_.stages.empty(), "ScreeningFunnel: need at least one stage");
  require(config_.true_active_fraction >= 0.0 &&
              config_.true_active_fraction <= 1.0,
          "ScreeningFunnel: active fraction must be in [0,1]");
  for (const auto& s : config_.stages) {
    require(s.cost_per_datapoint >= 0.0 && s.datapoints_per_day > 0.0,
            "ScreeningFunnel: invalid stage economics");
    require(s.false_positive_rate >= 0.0 && s.false_positive_rate <= 1.0 &&
                s.false_negative_rate >= 0.0 && s.false_negative_rate <= 1.0,
            "ScreeningFunnel: invalid stage error rates");
  }
}

FunnelResult ScreeningFunnel::run() {
  FunnelResult result;

  std::size_t actives = static_cast<std::size_t>(
      std::llround(static_cast<double>(config_.library_size) *
                   config_.true_active_fraction));
  std::size_t inactives = config_.library_size - actives;

  for (const auto& stage : config_.stages) {
    StageOutcome out;
    out.name = stage.name;
    out.tested = actives + inactives;
    out.true_actives_in = actives;
    if (out.tested == 0) {
      result.stages.push_back(out);
      continue;
    }

    // Binomial sampling of the assay's confusion matrix.
    std::size_t tp = 0;
    for (std::size_t i = 0; i < actives; ++i) {
      if (!rng_.bernoulli(stage.false_negative_rate)) ++tp;
    }
    std::size_t fp = 0;
    // For large inactive pools use the normal approximation via poisson.
    if (inactives > 100000) {
      fp = static_cast<std::size_t>(rng_.poisson(
          static_cast<double>(inactives) * stage.false_positive_rate));
      if (fp > inactives) fp = inactives;
    } else {
      for (std::size_t i = 0; i < inactives; ++i) {
        if (rng_.bernoulli(stage.false_positive_rate)) ++fp;
      }
    }

    out.passed = tp + fp;
    out.true_actives_out = tp;
    out.cost = static_cast<double>(out.tested) * stage.cost_per_datapoint;
    out.days = static_cast<double>(out.tested) / stage.datapoints_per_day;
    result.total_cost += out.cost;
    result.total_days += out.days;
    result.stages.push_back(out);

    actives = tp;
    inactives = fp;
  }

  result.final_candidates = actives + inactives;
  result.final_true_actives = actives;
  return result;
}

FunnelStatistics monte_carlo_funnel(const FunnelConfig& config, int runs,
                                    Rng rng) {
  require(runs >= 1, "monte_carlo_funnel: need at least one run");
  std::vector<double> costs;
  std::vector<double> hits;
  costs.reserve(static_cast<std::size_t>(runs));
  hits.reserve(static_cast<std::size_t>(runs));
  int failures = 0;
  for (int k = 0; k < runs; ++k) {
    ScreeningFunnel funnel(config, rng.fork());
    const auto r = funnel.run();
    costs.push_back(r.total_cost);
    hits.push_back(static_cast<double>(r.final_true_actives));
    if (r.final_true_actives == 0) ++failures;
  }
  FunnelStatistics s;
  s.runs = runs;
  s.cost_mean = mean(costs);
  s.cost_p10 = percentile(costs, 10.0);
  s.cost_p90 = percentile(costs, 90.0);
  s.hits_mean = mean(hits);
  s.hits_min = *std::min_element(hits.begin(), hits.end());
  s.failure_probability = static_cast<double>(failures) / runs;
  return s;
}

StageParams stage_from_confusion(std::string name, double cost_per_datapoint,
                                 double datapoints_per_day,
                                 std::size_t false_positives,
                                 std::size_t true_negatives,
                                 std::size_t false_negatives,
                                 std::size_t true_positives) {
  StageParams p;
  p.name = std::move(name);
  p.cost_per_datapoint = cost_per_datapoint;
  p.datapoints_per_day = datapoints_per_day;
  // Laplace (add-half) smoothing keeps finite-sample rates off 0 and 1.
  p.false_positive_rate =
      (static_cast<double>(false_positives) + 0.5) /
      (static_cast<double>(false_positives + true_negatives) + 1.0);
  p.false_negative_rate =
      (static_cast<double>(false_negatives) + 0.5) /
      (static_cast<double>(false_negatives + true_positives) + 1.0);
  return p;
}

double FunnelResult::cost_per_hit() const {
  if (final_true_actives == 0) return std::numeric_limits<double>::infinity();
  return total_cost / static_cast<double>(final_true_actives);
}

}  // namespace biosense::screening
