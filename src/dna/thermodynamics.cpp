#include "dna/thermodynamics.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::dna {

namespace {

constexpr double kCalPerMol = 4184.0;       // J per kcal
constexpr double kCalEntropy = 4.184;       // J/(mol K) per cal/(mol K)

// Unified NN parameters (SantaLucia 1998), indexed by [first][second] base
// of the 5'->3' top-strand dimer; bottom strand is the Watson-Crick
// complement. dH in kcal/mol, dS in cal/(mol K).
struct NnEntry {
  double dh;
  double ds;
};

constexpr NnEntry kNn[4][4] = {
    // second: A            C             G             T
    /*A*/ {{-7.9, -22.2}, {-8.4, -22.4}, {-7.8, -21.0}, {-7.2, -20.4}},
    /*C*/ {{-8.5, -22.7}, {-8.0, -19.9}, {-10.6, -27.2}, {-7.8, -21.0}},
    /*G*/ {{-8.2, -22.2}, {-9.8, -24.4}, {-8.0, -19.9}, {-8.4, -22.4}},
    /*T*/ {{-7.2, -21.3}, {-8.5, -22.7}, {-8.2, -22.2}, {-7.9, -22.2}},
};
// Note: entries for dimers not explicitly listed in the 10-parameter table
// are filled with their symmetry-equivalent values (e.g. TG/CA == CA/GT).

constexpr NnEntry kInitGc = {0.1, -2.8};
constexpr NnEntry kInitAt = {2.3, 4.1};

bool is_at(Base b) { return b == Base::kA || b == Base::kT; }

}  // namespace

DuplexEnergy duplex_energy(const Sequence& probe, const ThermoConditions& cond) {
  require(probe.size() >= 2, "duplex_energy: probe must have >= 2 bases");
  require(cond.na_molar > 0.0, "duplex_energy: Na+ must be positive");

  double dh_kcal = 0.0;
  double ds_cal = 0.0;
  for (std::size_t i = 0; i + 1 < probe.size(); ++i) {
    const auto& e = kNn[static_cast<int>(probe[i])][static_cast<int>(probe[i + 1])];
    dh_kcal += e.dh;
    ds_cal += e.ds;
  }
  // Initiation at both duplex ends.
  for (Base end : {probe[0], probe[probe.size() - 1]}) {
    const auto& init = is_at(end) ? kInitAt : kInitGc;
    dh_kcal += init.dh;
    ds_cal += init.ds;
  }
  // Salt correction on entropy (unified model): 0.368 * N/2 * ln[Na+]
  // cal/(mol K) with N the number of phosphates ~ 2*(len-1).
  ds_cal += 0.368 * static_cast<double>(probe.size() - 1) *
            std::log(cond.na_molar);

  return DuplexEnergy{dh_kcal * kCalPerMol, ds_cal * kCalEntropy};
}

double duplex_dg(const Sequence& probe, std::size_t mismatches,
                 const ThermoConditions& cond) {
  const DuplexEnergy e = duplex_energy(probe, cond);
  return e.dg(cond.temp_k) +
         static_cast<double>(mismatches) * cond.mismatch_penalty;
}

double dissociation_constant(const Sequence& probe, std::size_t mismatches,
                             const ThermoConditions& cond) {
  const double dg = duplex_dg(probe, mismatches, cond);
  const double rt = constants::kGasConstant * cond.temp_k;
  return std::exp(dg / rt);
}

double melting_temperature(const Sequence& probe, const ThermoConditions& cond,
                           double ct_molar) {
  require(ct_molar > 0.0, "melting_temperature: ct must be positive");
  const DuplexEnergy e = duplex_energy(probe, cond);
  const double denom =
      e.ds + constants::kGasConstant * std::log(ct_molar / 4.0);
  require(denom < 0.0, "melting_temperature: degenerate duplex");
  return e.dh / denom;
}

}  // namespace biosense::dna
