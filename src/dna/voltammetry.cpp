#include "dna/voltammetry.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::dna {

namespace {

// nF/(RT) helper: inverse volts.
double nf_over_rt(const RedoxCouple& couple, double temp_k) {
  return couple.n_electrons * constants::kFaraday /
         (constants::kGasConstant * temp_k);
}

}  // namespace

double nernst_potential(const RedoxCouple& couple, double temp_k,
                        double ratio_o_over_r) {
  require(ratio_o_over_r > 0.0, "nernst_potential: ratio must be positive");
  return couple.e0 + std::log(ratio_o_over_r) / nf_over_rt(couple, temp_k);
}

double butler_volmer_current_density(const RedoxCouple& couple,
                                     const ElectrodeParams& electrode,
                                     double eta, double c_o, double c_r) {
  const double f = nf_over_rt(couple, electrode.temp_k);
  // Anodic (oxidation) positive; rate constants in m/s.
  const double k_a = couple.k0 * std::exp((1.0 - couple.alpha) * f * eta);
  const double k_c = couple.k0 * std::exp(-couple.alpha * f * eta);
  const double rate = k_a * c_r * electrode.bulk_conc -
                      k_c * c_o * electrode.bulk_conc;  // mol/(m^2 s)
  return couple.n_electrons * constants::kFaraday * rate;
}

double randles_sevcik_peak(const RedoxCouple& couple,
                           const ElectrodeParams& electrode,
                           double scan_rate) {
  require(scan_rate > 0.0, "randles_sevcik_peak: scan rate must be positive");
  const double n = couple.n_electrons;
  const double f_const = constants::kFaraday;
  return 0.4463 * n * f_const * electrode.area * electrode.bulk_conc *
         std::sqrt(n * f_const * scan_rate * couple.diffusion /
                   (constants::kGasConstant * electrode.temp_k));
}

Voltammogram cyclic_voltammetry(const RedoxCouple& couple,
                                const ElectrodeParams& electrode,
                                double e_start, double e_vertex,
                                double scan_rate, std::size_t grid_points) {
  require(scan_rate > 0.0, "cyclic_voltammetry: scan rate must be positive");
  require(grid_points >= 16, "cyclic_voltammetry: need >= 16 grid points");
  require(e_vertex != e_start, "cyclic_voltammetry: zero sweep window");

  const double d = couple.diffusion;
  const double t_total = 2.0 * std::abs(e_vertex - e_start) / scan_rate;
  // Domain: several diffusion lengths; explicit FTCS stability dt<=h^2/2D.
  const double length = 6.0 * std::sqrt(d * t_total);
  const double h = length / static_cast<double>(grid_points);
  const double dt = 0.25 * h * h / d;
  const auto steps = static_cast<std::size_t>(t_total / dt) + 1;

  // Concentrations as fractions of bulk: reduced species starts at 1
  // everywhere, oxidized at 0.
  std::vector<double> cr(grid_points, 1.0), co(grid_points, 0.0);
  std::vector<double> cr_next(grid_points), co_next(grid_points);

  Voltammogram out;
  out.potential.reserve(steps);
  out.current.reserve(steps);
  const double f = nf_over_rt(couple, electrode.temp_k);
  const double sweep_dir = e_vertex > e_start ? 1.0 : -1.0;

  for (std::size_t s = 0; s < steps; ++s) {
    const double t = static_cast<double>(s) * dt;
    // Triangular potential program.
    double e = t <= t_total / 2.0
                   ? e_start + sweep_dir * scan_rate * t
                   : e_vertex - sweep_dir * scan_rate * (t - t_total / 2.0);
    const double eta = e - couple.e0;
    const double k_a = couple.k0 * std::exp((1.0 - couple.alpha) * f * eta);
    const double k_c = couple.k0 * std::exp(-couple.alpha * f * eta);

    // Backward-Euler update of the surface node (robust for reversible
    // kinetics where k0 is effectively infinite on the grid scale).
    const double a = dt * d / (h * h);
    const double b = dt / h;
    const double m11 = 1.0 + a + b * k_a;
    const double m12 = -b * k_c;
    const double m21 = -b * k_a;
    const double m22 = 1.0 + a + b * k_c;
    const double r1 = cr[0] + a * cr[1];
    const double r2 = co[0] + a * co[1];
    const double det = m11 * m22 - m12 * m21;
    const double cr0 = (r1 * m22 - m12 * r2) / det;
    const double co0 = (m11 * r2 - m21 * r1) / det;

    const double rate = (k_a * cr0 - k_c * co0) * electrode.bulk_conc;
    const double current =
        couple.n_electrons * constants::kFaraday * electrode.area * rate;
    out.potential.push_back(e);
    out.current.push_back(current);

    // Explicit interior diffusion.
    cr_next[0] = cr0;
    co_next[0] = co0;
    for (std::size_t i = 1; i + 1 < grid_points; ++i) {
      cr_next[i] = cr[i] + a * (cr[i - 1] - 2.0 * cr[i] + cr[i + 1]);
      co_next[i] = co[i] + a * (co[i - 1] - 2.0 * co[i] + co[i + 1]);
    }
    cr_next[grid_points - 1] = 1.0;  // bulk boundary
    co_next[grid_points - 1] = 0.0;
    cr.swap(cr_next);
    co.swap(co_next);
  }

  // Peak extraction.
  for (std::size_t i = 0; i < out.current.size(); ++i) {
    if (out.current[i] > out.peak_anodic) {
      out.peak_anodic = out.current[i];
      out.e_peak_anodic = out.potential[i];
    }
    if (out.current[i] < out.peak_cathodic) {
      out.peak_cathodic = out.current[i];
      out.e_peak_cathodic = out.potential[i];
    }
  }
  return out;
}

}  // namespace biosense::dna
