#include "dna/assay.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace biosense::dna {

MicroarrayAssay::MicroarrayAssay(std::vector<ProbeSpot> spots,
                                 AssayProtocol protocol, RedoxParams redox,
                                 Rng rng)
    : spots_(std::move(spots)),
      protocol_(protocol),
      redox_(redox),
      rng_(rng) {
  require(!spots_.empty(), "MicroarrayAssay: need at least one spot");
  for (const auto& s : spots_) {
    require(!s.probe.empty() && s.n_probes > 0.0,
            "MicroarrayAssay: invalid spot");
  }
}

std::vector<SpotResult> MicroarrayAssay::run(
    const std::vector<TargetSpecies>& sample) {
  std::vector<SpotResult> results;
  results.reserve(spots_.size());

  for (const auto& spot : spots_) {
    // Determine, per sample species, the best hybridization window and its
    // dissociation constant.
    std::vector<BindingSpecies> binding;
    std::vector<std::size_t> mismatches;
    for (const auto& target : sample) {
      const auto mm = target.sequence.best_window_mismatches(spot.probe);
      if (!mm || *mm > protocol_.max_mismatches) continue;
      BindingSpecies b;
      b.concentration = target.concentration;
      b.kd = dissociation_constant(spot.probe, *mm, protocol_.conditions);
      binding.push_back(b);
      mismatches.push_back(*mm);
    }

    SpotResult r;
    r.spot_name = spot.name;
    if (!binding.empty()) {
      SpotKinetics kin(protocol_.kinetics, std::move(binding));
      kin.hybridize(protocol_.hybridization_time, protocol_.time_step);
      kin.wash(protocol_.wash_time, protocol_.time_step);
      r.occupancy = kin.total_theta();
      r.bound_labels = r.occupancy * spot.n_probes;
      r.best_match_mismatches =
          *std::min_element(mismatches.begin(), mismatches.end());
    }
    RedoxCyclingSensor sensor(redox_, rng_.fork());
    r.sensor_current = sensor.steady_state_current(r.bound_labels);
    results.push_back(std::move(r));
  }
  return results;
}

std::vector<ProbeSpot> MicroarrayAssay::design_probes(
    const std::vector<TargetSpecies>& targets, std::size_t probe_length,
    double n_probes_per_spot) {
  std::vector<ProbeSpot> spots;
  spots.reserve(targets.size());
  for (const auto& t : targets) {
    require(t.sequence.size() >= probe_length,
            "design_probes: target shorter than probe length");
    // Probe against the central window of the target.
    const std::size_t pos = (t.sequence.size() - probe_length) / 2;
    ProbeSpot s;
    s.probe = t.sequence.subsequence(pos, probe_length).reverse_complement();
    s.n_probes = n_probes_per_spot;
    s.name = t.name;
    spots.push_back(std::move(s));
  }
  return spots;
}

}  // namespace biosense::dna
