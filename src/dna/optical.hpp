// Optical fluorescence detection baseline.
//
// "Whereas optical detection principles make use of fluorescence or
// chemoluminescence light originating from label molecules bound to the
// targets [1-3], electronic principles ..." — the optical scanner is the
// incumbent the CMOS chip competes with, so it is implemented as the
// baseline: fluorophore labels, excitation/collection efficiency chain,
// photobleaching during the scan, detector shot/dark noise, and a
// per-spot digital readout. The detection-principles bench compares its
// limit of detection against the electronic approaches.
#pragma once

#include "common/rng.hpp"

namespace biosense::dna {

struct FluorescenceScannerParams {
  /// Photons emitted per fluorophore per second at the chosen excitation
  /// power (absorption cross-section x photon flux x quantum yield).
  double emission_rate = 5e4;
  /// Fraction of emitted photons that reach the detector (solid angle x
  /// filter/optics losses).
  double collection_eff = 0.03;
  /// Detector quantum efficiency (PMT/photodiode).
  double detector_qe = 0.25;
  /// Photobleaching time constant under excitation, s.
  double bleach_tau = 20.0;
  /// Integration time per spot, s.
  double dwell_time = 10e-3;
  /// Detector dark + background count rate, counts/s.
  double dark_rate = 2e4;
  /// Labels per bound target (single-dye labeling = 1).
  double dyes_per_target = 1.0;
};

struct SpotScan {
  double photons_signal = 0.0;  // expected signal counts
  double photons_dark = 0.0;    // expected background counts
  long long counts = 0;         // Poisson-drawn total detector counts
  double snr = 0.0;             // expected S / sqrt(S + 2B)
};

class FluorescenceScanner {
 public:
  FluorescenceScanner(FluorescenceScannerParams params, Rng rng);

  /// Scans one spot carrying `bound_labels` fluorophore-labeled targets.
  /// `prior_exposure` accounts for bleaching from earlier scans.
  SpotScan scan_spot(double bound_labels, double prior_exposure = 0.0);

  /// Expected signal counts (no noise) for a label count.
  double expected_signal(double bound_labels, double prior_exposure = 0.0) const;

  /// Smallest label count detectable at 3-sigma against the background
  /// (solves S = 3 sqrt(S + 2B)).
  double detection_limit_labels() const;

  const FluorescenceScannerParams& params() const { return params_; }

 private:
  FluorescenceScannerParams params_;
  Rng rng_;
};

}  // namespace biosense::dna
