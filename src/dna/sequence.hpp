// DNA sequence value type.
//
// Probe molecules on the paper's microarray are 15-40 bases long (Fig. 2
// caption); target molecules can be 2-3 orders of magnitude longer. A
// `Sequence` stores 5'->3' bases and provides the operations the assay
// model needs: complementing, mismatch counting against a probe, and
// subsequence search (a long target hybridizes to a probe wherever a
// sufficiently complementary window exists).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"

namespace biosense::dna {

enum class Base : std::uint8_t { kA = 0, kC = 1, kG = 2, kT = 3 };

char to_char(Base b);
Base from_char(char c);  // throws ConfigError on invalid character
Base complement(Base b);

class Sequence {
 public:
  Sequence() = default;
  /// Parses an ACGT string (case-insensitive); throws on invalid characters.
  explicit Sequence(std::string_view bases);
  explicit Sequence(std::vector<Base> bases) : bases_(std::move(bases)) {}

  static Sequence random(std::size_t length, Rng& rng);

  std::size_t size() const { return bases_.size(); }
  bool empty() const { return bases_.empty(); }
  Base operator[](std::size_t i) const { return bases_[i]; }
  const std::vector<Base>& bases() const { return bases_; }

  std::string str() const;

  /// Watson-Crick complement (same orientation).
  Sequence complemented() const;
  /// Reverse complement: the strand that hybridizes to this one.
  Sequence reverse_complement() const;
  Sequence reversed() const;
  Sequence subsequence(std::size_t pos, std::size_t len) const;

  /// Fraction of G/C bases.
  double gc_content() const;

  /// Number of positions where `other` is NOT the Watson-Crick complement
  /// of this sequence when the two are aligned antiparallel (i.e. comparing
  /// against other's reverse). Requires equal lengths.
  std::size_t mismatches_when_hybridized(const Sequence& other) const;

  /// Best (fewest-mismatch) alignment of the probe against any window of
  /// this (long) target in hybridization orientation. Returns the mismatch
  /// count, or nullopt if the target is shorter than the probe.
  std::optional<std::size_t> best_window_mismatches(const Sequence& probe) const;

  /// Copy with `count` random point substitutions at distinct positions.
  Sequence with_mismatches(std::size_t count, Rng& rng) const;

  bool operator==(const Sequence& other) const = default;

 private:
  std::vector<Base> bases_;
};

}  // namespace biosense::dna
