// Langmuir hybridization kinetics of a probe spot.
//
// Each test site of the microarray carries N_probe immobilized
// single-stranded probes (Fig. 2b/c). During the hybridization phase the
// chip is flooded with the analyte; species i at bulk concentration C_i
// binds with association rate k_a and unbinds with k_d,i = k_a * K_d,i.
// Competitive Langmuir kinetics on the shared probe sites:
//
//     d theta_i / dt = k_a C_i (1 - sum_j theta_j) - k_d,i theta_i
//
// The washing step (Fig. 2f/g) is the same dynamics with C_i = 0: weakly
// bound (mismatched) duplexes dissociate quickly while matched duplexes
// survive — this kinetic discrimination is what the sensor ultimately
// reads out.
#pragma once

#include <cstddef>
#include <vector>

namespace biosense::dna {

/// One species competing for the spot's probe sites.
struct BindingSpecies {
  double concentration = 0.0;  // bulk concentration during hybridization, M
  double kd = 1e-9;            // dissociation constant, M
  double theta = 0.0;          // fraction of probe sites bound by this species
};

struct HybridizationParams {
  /// Association rate constant, 1/(M s). Typical surface hybridization:
  /// 1e5..1e6.
  double ka = 1e6;
};

class SpotKinetics {
 public:
  SpotKinetics(HybridizationParams params, std::vector<BindingSpecies> species);

  /// Advances the competitive Langmuir ODE by `dt` using sub-stepped
  /// explicit integration (stable for stiff wash-off of weak binders).
  void step(double dt);

  /// Runs the hybridization phase for `duration`.
  void hybridize(double duration, double dt = 1.0);

  /// Runs the washing phase: zero bulk concentration for `duration`.
  void wash(double duration, double dt = 1.0);

  /// Equilibrium occupancy of species i under the current concentrations
  /// (competitive Langmuir isotherm) — the t->infinity limit of step().
  double equilibrium_theta(std::size_t i) const;

  double total_theta() const;
  double theta(std::size_t i) const { return species_.at(i).theta; }
  std::size_t species_count() const { return species_.size(); }
  const std::vector<BindingSpecies>& species() const { return species_; }

 private:
  HybridizationParams params_;
  std::vector<BindingSpecies> species_;
  std::vector<double> saved_conc_;  // concentrations before a wash
  bool washing_ = false;
};

}  // namespace biosense::dna
