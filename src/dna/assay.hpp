// End-to-end microarray assay model: probe layout + sample + protocol.
//
// Ties the Fig. 2 story together: every spot carries an immobilized probe
// sequence; the sample is a set of labeled target sequences at given
// concentrations; the protocol runs hybridization then washing; the result
// is, per spot, the surviving bound-label count and the redox sensor
// current the chip's ADC will see.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dna/electrochemistry.hpp"
#include "dna/hybridization.hpp"
#include "dna/sequence.hpp"
#include "dna/thermodynamics.hpp"

namespace biosense::dna {

/// A probe spot on the array surface.
struct ProbeSpot {
  Sequence probe;
  /// Number of immobilized probe molecules on the spot.
  double n_probes = 1e7;
  std::string name;
};

/// One labeled target species in the analyte.
struct TargetSpecies {
  Sequence sequence;
  double concentration = 1e-9;  // M
  std::string name;
};

struct AssayProtocol {
  double hybridization_time = 1800.0;  // s (30 min)
  double wash_time = 120.0;            // s
  double time_step = 5.0;              // kinetics step, s
  ThermoConditions conditions{};
  HybridizationParams kinetics{};
  /// Targets binding a probe with more than this many mismatches are
  /// ignored entirely (no measurable affinity).
  std::size_t max_mismatches = 8;
};

struct SpotResult {
  std::string spot_name;
  double bound_labels = 0.0;        // labels surviving the wash
  double occupancy = 0.0;           // total bound fraction after wash
  double sensor_current = 0.0;      // steady-state redox current, A
  std::size_t best_match_mismatches = ~0u;  // vs best-binding sample species
};

class MicroarrayAssay {
 public:
  MicroarrayAssay(std::vector<ProbeSpot> spots, AssayProtocol protocol,
                  RedoxParams redox, Rng rng);

  /// Runs the full protocol against `sample` and returns one result per
  /// spot (same order as the spot list).
  std::vector<SpotResult> run(const std::vector<TargetSpecies>& sample);

  const std::vector<ProbeSpot>& spots() const { return spots_; }

  /// Designs a probe set for a panel of target sequences: each probe is the
  /// reverse complement of (a window of) its target. Convenience used by
  /// examples and benches.
  static std::vector<ProbeSpot> design_probes(
      const std::vector<TargetSpecies>& targets, std::size_t probe_length,
      double n_probes_per_spot = 1e7);

 private:
  std::vector<ProbeSpot> spots_;
  AssayProtocol protocol_;
  RedoxParams redox_;
  Rng rng_;
};

}  // namespace biosense::dna
