// Duplex thermodynamics: SantaLucia unified nearest-neighbor model.
//
// Hybridization on the microarray (Fig. 2) is a thermodynamic process: a
// probe/target duplex forms when its free energy of formation is
// sufficiently negative at the assay temperature, and mismatched duplexes
// are less stable — that difference is the entire detection principle. We
// implement the unified nearest-neighbor parameter set (SantaLucia, PNAS
// 95:1460, 1998): per-dimer enthalpy/entropy increments, duplex initiation
// terms, terminal A-T penalty and a sodium-concentration entropy
// correction; internal mismatches are modeled as a configurable
// destabilization per mismatch (default +3.8 kcal/mol, the average over
// published single-mismatch tables).
#pragma once

#include "dna/sequence.hpp"

namespace biosense::dna {

struct DuplexEnergy {
  double dh = 0.0;  // enthalpy, J/mol (negative = favorable)
  double ds = 0.0;  // entropy, J/(mol K)

  /// Gibbs free energy at temperature T (K), J/mol.
  double dg(double temp_k) const { return dh - temp_k * ds; }
};

struct ThermoConditions {
  double temp_k = 310.15;     // assay temperature (37 C default)
  double na_molar = 0.5;      // monovalent salt concentration
  /// Free-energy penalty per internal mismatch, J/mol (positive).
  double mismatch_penalty = 3.8 * 4184.0;
};

/// Enthalpy/entropy of the perfect Watson-Crick duplex of `probe` with its
/// reverse complement, including initiation, terminal-AT and salt terms.
DuplexEnergy duplex_energy(const Sequence& probe,
                           const ThermoConditions& cond);

/// Free energy (J/mol) of a duplex between `probe` and a target window with
/// `mismatches` internal mismatches: perfect-duplex dG plus the penalty per
/// mismatch. Less negative (weaker) with every mismatch.
double duplex_dg(const Sequence& probe, std::size_t mismatches,
                 const ThermoConditions& cond);

/// Dissociation constant K_d (molar, 1 M reference state):
/// K_d = exp(dG / RT). A stable 20-mer duplex has K_d ~ 1e-18 M; four
/// mismatches raise it by many orders of magnitude.
double dissociation_constant(const Sequence& probe, std::size_t mismatches,
                             const ThermoConditions& cond);

/// Two-state melting temperature (K) at total strand concentration `ct`
/// (molar, non-self-complementary): Tm = dH / (dS + R ln(ct/4)).
double melting_temperature(const Sequence& probe, const ThermoConditions& cond,
                           double ct_molar = 1e-6);

}  // namespace biosense::dna
