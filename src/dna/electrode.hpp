// Interdigitated electrode (IDE) geometry of a redox-cycling sensor site.
//
// Each DNA sensor site is a pair of interdigitated gold electrode combs:
// the product molecule shuttles across the finger gap, so the gap width
// sets the chemical gain and the finger count/length set the collection
// area. This module derives the transport parameters used elsewhere
// (RedoxParams, RandlesParams) from drawn geometry, closing the loop from
// layout to signal — the design-exploration tool a chip architect needs.
#pragma once

#include "dna/electrochemistry.hpp"
#include "dna/labelfree.hpp"

namespace biosense::dna {

struct IdeGeometry {
  int fingers = 16;                // total fingers (both combs)
  Length finger_length = 90.0_um;
  Length finger_width = 1.0_um;
  Length gap = 1.0_um;             // between adjacent fingers
  Length metal_thickness = 0.3_um;  // affects edge field / collection
  Diffusivity diffusion = Diffusivity(8e-10);  // product diffusion, m^2/s
};

class InterdigitatedElectrode {
 public:
  explicit InterdigitatedElectrode(IdeGeometry geometry);

  /// Total metal area of both combs.
  Area electrode_area() const;

  /// Footprint of the whole sensor site (fingers + gaps).
  Area site_area() const;

  /// Shuttle frequency of a product molecule across the gap: D / gap^2.
  Frequency shuttle_frequency() const;

  /// Redox-cycling collection efficiency: fraction of shuttling molecules
  /// collected rather than lost upward; grows as the gap shrinks relative
  /// to the escape height ~ (width+gap) aspect. Empirical closed form
  /// eta = 1 / (1 + gap / (0.7 * width)) capturing published IDA trends.
  double collection_efficiency() const;

  /// Residence time of a product molecule over the site before diffusing
  /// away: tau ~ h_eff^2 / (2 D) with the effective trapping height set by
  /// the finger pitch.
  Time residence_time() const;

  /// Fills a RedoxParams with this geometry's transport terms (enzyme
  /// kinetics and background are kept from `base`).
  RedoxParams redox_params(const RedoxParams& base = {}) const;

  /// Double-layer capacitance for the impedance model (~0.2 F/m^2 of gold
  /// in electrolyte) and solution resistance from the cell constant.
  RandlesParams randles_params(const RandlesParams& base = {}) const;

  const IdeGeometry& geometry() const { return geometry_; }

 private:
  IdeGeometry geometry_;
};

}  // namespace biosense::dna
