// Interdigitated electrode (IDE) geometry of a redox-cycling sensor site.
//
// Each DNA sensor site is a pair of interdigitated gold electrode combs:
// the product molecule shuttles across the finger gap, so the gap width
// sets the chemical gain and the finger count/length set the collection
// area. This module derives the transport parameters used elsewhere
// (RedoxParams, RandlesParams) from drawn geometry, closing the loop from
// layout to signal — the design-exploration tool a chip architect needs.
#pragma once

#include "dna/electrochemistry.hpp"
#include "dna/labelfree.hpp"

namespace biosense::dna {

struct IdeGeometry {
  int fingers = 16;             // total fingers (both combs)
  double finger_length = 90e-6; // m
  double finger_width = 1e-6;   // m
  double gap = 1e-6;            // m between adjacent fingers
  double metal_thickness = 0.3e-6;  // m (affects edge field / collection)
  double diffusion = 8e-10;     // product diffusion constant, m^2/s
};

class InterdigitatedElectrode {
 public:
  explicit InterdigitatedElectrode(IdeGeometry geometry);

  /// Total metal area of both combs, m^2.
  double electrode_area() const;

  /// Footprint of the whole sensor site (fingers + gaps), m^2.
  double site_area() const;

  /// Shuttle frequency of a product molecule across the gap: D / gap^2.
  double shuttle_frequency() const;

  /// Redox-cycling collection efficiency: fraction of shuttling molecules
  /// collected rather than lost upward; grows as the gap shrinks relative
  /// to the escape height ~ (width+gap) aspect. Empirical closed form
  /// eta = 1 / (1 + gap / (0.7 * width)) capturing published IDA trends.
  double collection_efficiency() const;

  /// Residence time of a product molecule over the site before diffusing
  /// away: tau ~ h_eff^2 / (2 D) with the effective trapping height set by
  /// the finger pitch.
  double residence_time() const;

  /// Fills a RedoxParams with this geometry's transport terms (enzyme
  /// kinetics and background are kept from `base`).
  RedoxParams redox_params(const RedoxParams& base = {}) const;

  /// Double-layer capacitance for the impedance model (~0.2 F/m^2 of gold
  /// in electrolyte) and solution resistance from the cell constant.
  RandlesParams randles_params(const RandlesParams& base = {}) const;

  const IdeGeometry& geometry() const { return geometry_; }

 private:
  IdeGeometry geometry_;
};

}  // namespace biosense::dna
