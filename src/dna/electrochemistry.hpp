// Redox-cycling electrochemical transduction.
//
// The paper's DNA chip translates hybridization events into sensor current
// with an enzyme-label + redox-cycling scheme ([4-6], [12,13]): targets
// carry an enzyme label (alkaline phosphatase) that continuously converts a
// substrate into an electrochemically active product (p-aminophenol). The
// product shuttles between interdigitated generator and collector gold
// electrodes held above/below its redox potential, transferring electrons
// on every cycle — a chemical amplifier that turns a handful of bound
// molecules into pA..nA currents.
//
// Model: bound labels produce product at rate k_cat each; product escapes
// the sensor volume with residence time tau_res (diffusion out), so the
// product population N_p follows dN_p/dt = n_labels k_cat - N_p / tau_res.
// Each product molecule contributes i_mol = n_e q f_shuttle to the
// collector current, with f_shuttle = D / gap^2 the diffusion shuttle
// frequency and a collection efficiency < 1. Background: electrode offset
// current plus slow drift. Shot noise is optional (on by default the
// current is an expectation; the chip ADC integrates long enough that shot
// fluctuations average out — tests exercise both modes).
#pragma once

#include "common/rng.hpp"
#include "common/units.hpp"

namespace biosense::dna {

struct RedoxParams {
  Frequency k_cat = 1.0_kHz;    // enzyme turnovers per second per label
  Time tau_res = 50.0_ms;       // product residence time in sensor volume
  Diffusivity diffusion = Diffusivity(8e-10);  // product diffusion, m^2/s
  Length electrode_gap = 1.0_um;  // generator/collector gap
  double electrons_per_cycle = 2.0;
  double collection_eff = 0.9;  // fraction of shuttles collected
  Current background = 0.5_pA;  // electrode background current
  double drift_per_s = 0.002;   // relative background drift rate, 1/s
};

class RedoxCyclingSensor {
 public:
  RedoxCyclingSensor(RedoxParams params, Rng rng);

  /// Advances the chemistry by dt with `n_labels` enzyme labels bound at
  /// the sensor and returns the instantaneous collector current (A).
  double step(double n_labels, double dt);

  /// Steady-state current for a constant label count (t -> infinity).
  double steady_state_current(double n_labels) const;

  /// Current contributed by a single product molecule (A).
  double current_per_molecule() const;

  /// Steady-state product population for a constant label count.
  double steady_state_population(double n_labels) const;

  double product_population() const { return n_product_; }
  void reset();

 private:
  RedoxParams params_;
  Rng rng_;
  double n_product_ = 0.0;
  double drift_state_ = 1.0;
};

}  // namespace biosense::dna
