// Electrode kinetics and cyclic voltammetry.
//
// The DNA chip's periphery DACs exist to hold the generator and collector
// electrodes at precise potentials around the label chemistry's redox
// potential ([4-6]). This module models the underlying electrochemistry:
// Butler-Volmer electron-transfer kinetics at a (gold) working electrode,
// Nernst equilibrium, and a semi-infinite diffusion simulation good enough
// to reproduce the classic cyclic-voltammetry signatures (Randles-Sevcik
// peak current scaling with sqrt(scan rate), ~59/n mV peak separation for
// a reversible couple at room temperature).
//
// Used by the chip model to pick electrode potentials and by tests to pin
// the chemistry to textbook behaviour.
#pragma once

#include <cstddef>
#include <vector>

namespace biosense::dna {

/// A one-electron (or n-electron) redox couple O + n e- <-> R.
struct RedoxCouple {
  double e0 = 0.1;           // formal potential vs reference, V
  int n_electrons = 2;       // p-aminophenol: 2-electron couple
  double k0 = 1e-4;          // standard rate constant, m/s
  double alpha = 0.5;        // transfer coefficient
  double diffusion = 8e-10;  // m^2/s for both O and R (simplification)
};

struct ElectrodeParams {
  double area = 1e-8;        // m^2 (100 um x 100 um)
  double temp_k = 298.15;
  double bulk_conc = 1.0;    // mol/m^3 (= 1 mM) of the reduced species
};

/// Butler-Volmer current density (A/m^2) at overpotential eta (V) with
/// surface concentrations expressed as fractions of bulk (c_o, c_r in
/// [0, inf), 1 = bulk).
double butler_volmer_current_density(const RedoxCouple& couple,
                                     const ElectrodeParams& electrode,
                                     double eta, double c_o, double c_r);

/// Equilibrium (Nernst) potential for the given surface concentration
/// ratio c_o / c_r.
double nernst_potential(const RedoxCouple& couple, double temp_k,
                        double ratio_o_over_r);

struct Voltammogram {
  std::vector<double> potential;  // V
  std::vector<double> current;    // A
  double peak_anodic = 0.0;       // A
  double peak_cathodic = 0.0;     // A
  double e_peak_anodic = 0.0;     // V
  double e_peak_cathodic = 0.0;   // V

  /// Peak separation, V (reversible couple: ~59 mV / n at 25 C).
  double peak_separation() const { return e_peak_anodic - e_peak_cathodic; }
};

/// Simulates one full cyclic-voltammetry cycle from e_start to e_vertex and
/// back at `scan_rate` (V/s) using an explicit 1-D finite-difference
/// diffusion grid. The electrolyte initially contains only the reduced
/// species at bulk concentration.
Voltammogram cyclic_voltammetry(const RedoxCouple& couple,
                                const ElectrodeParams& electrode,
                                double e_start, double e_vertex,
                                double scan_rate,
                                std::size_t grid_points = 200);

/// Randles-Sevcik peak current prediction for a reversible couple (A):
/// i_p = 0.4463 n F A c sqrt(n F v D / (R T)).
double randles_sevcik_peak(const RedoxCouple& couple,
                           const ElectrodeParams& electrode,
                           double scan_rate);

}  // namespace biosense::dna
