#include "dna/sequence.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace biosense::dna {

char to_char(Base b) {
  switch (b) {
    case Base::kA: return 'A';
    case Base::kC: return 'C';
    case Base::kG: return 'G';
    case Base::kT: return 'T';
  }
  return '?';
}

Base from_char(char c) {
  switch (c) {
    case 'A': case 'a': return Base::kA;
    case 'C': case 'c': return Base::kC;
    case 'G': case 'g': return Base::kG;
    case 'T': case 't': return Base::kT;
    default:
      throw ConfigError(std::string("Sequence: invalid base character '") + c +
                        "'");
  }
}

Base complement(Base b) {
  switch (b) {
    case Base::kA: return Base::kT;
    case Base::kC: return Base::kG;
    case Base::kG: return Base::kC;
    case Base::kT: return Base::kA;
  }
  return Base::kA;
}

Sequence::Sequence(std::string_view bases) {
  bases_.reserve(bases.size());
  for (char c : bases) bases_.push_back(from_char(c));
}

Sequence Sequence::random(std::size_t length, Rng& rng) {
  std::vector<Base> b(length);
  for (auto& x : b) x = static_cast<Base>(rng.uniform_int(0, 3));
  return Sequence(std::move(b));
}

std::string Sequence::str() const {
  std::string s;
  s.reserve(bases_.size());
  for (Base b : bases_) s.push_back(to_char(b));
  return s;
}

Sequence Sequence::complemented() const {
  std::vector<Base> b(bases_.size());
  std::transform(bases_.begin(), bases_.end(), b.begin(),
                 [](Base x) { return complement(x); });
  return Sequence(std::move(b));
}

Sequence Sequence::reverse_complement() const {
  std::vector<Base> b(bases_.size());
  for (std::size_t i = 0; i < bases_.size(); ++i) {
    b[i] = complement(bases_[bases_.size() - 1 - i]);
  }
  return Sequence(std::move(b));
}

Sequence Sequence::reversed() const {
  std::vector<Base> b(bases_.rbegin(), bases_.rend());
  return Sequence(std::move(b));
}

Sequence Sequence::subsequence(std::size_t pos, std::size_t len) const {
  require(pos + len <= bases_.size(), "Sequence::subsequence out of range");
  return Sequence(std::vector<Base>(bases_.begin() + static_cast<long>(pos),
                                    bases_.begin() + static_cast<long>(pos + len)));
}

double Sequence::gc_content() const {
  if (bases_.empty()) return 0.0;
  const auto gc = std::count_if(bases_.begin(), bases_.end(), [](Base b) {
    return b == Base::kC || b == Base::kG;
  });
  return static_cast<double>(gc) / static_cast<double>(bases_.size());
}

std::size_t Sequence::mismatches_when_hybridized(const Sequence& other) const {
  require(other.size() == size(),
          "Sequence::mismatches_when_hybridized: lengths differ");
  // Antiparallel alignment: base i of this pairs with base (n-1-i) of other.
  std::size_t mm = 0;
  const std::size_t n = size();
  for (std::size_t i = 0; i < n; ++i) {
    if (other.bases_[n - 1 - i] != complement(bases_[i])) ++mm;
  }
  return mm;
}

std::optional<std::size_t> Sequence::best_window_mismatches(
    const Sequence& probe) const {
  if (probe.size() > size() || probe.empty()) return std::nullopt;
  std::size_t best = probe.size() + 1;
  for (std::size_t pos = 0; pos + probe.size() <= size(); ++pos) {
    const Sequence window = subsequence(pos, probe.size());
    best = std::min(best, probe.mismatches_when_hybridized(window));
    if (best == 0) break;
  }
  return best;
}

Sequence Sequence::with_mismatches(std::size_t count, Rng& rng) const {
  require(count <= size(), "Sequence::with_mismatches: too many mismatches");
  std::vector<std::size_t> positions(size());
  for (std::size_t i = 0; i < size(); ++i) positions[i] = i;
  rng.shuffle(positions);
  std::vector<Base> b = bases_;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t pos = positions[k];
    // Substitute with a different base.
    Base nb = b[pos];
    while (nb == b[pos]) nb = static_cast<Base>(rng.uniform_int(0, 3));
    b[pos] = nb;
  }
  return Sequence(std::move(b));
}

}  // namespace biosense::dna
