#include "dna/panels.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biosense::dna {

AssayPanel pathogen_panel(int n_organisms, int n_present,
                          double concentration, Rng& rng,
                          std::size_t probe_length,
                          std::size_t genome_length) {
  require(n_organisms >= 1 && n_present >= 0 && n_present <= n_organisms,
          "pathogen_panel: invalid counts");
  AssayPanel panel;
  for (int i = 0; i < n_organisms; ++i) {
    TargetSpecies t;
    t.sequence = Sequence::random(genome_length, rng);
    t.concentration = concentration;
    t.name = "organism" + std::to_string(i);
    panel.catalog.push_back(std::move(t));
  }
  panel.spots = MicroarrayAssay::design_probes(panel.catalog, probe_length);

  std::vector<std::size_t> order(static_cast<std::size_t>(n_organisms));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  panel.present.assign(static_cast<std::size_t>(n_organisms), false);
  for (int k = 0; k < n_present; ++k) {
    panel.present[order[static_cast<std::size_t>(k)]] = true;
    panel.sample.push_back(panel.catalog[order[static_cast<std::size_t>(k)]]);
  }
  return panel;
}

AssayPanel snp_panel(int n_loci, std::size_t mismatches, double concentration,
                     Rng& rng, std::size_t probe_length) {
  require(n_loci >= 1, "snp_panel: need at least one locus");
  AssayPanel panel;
  for (int i = 0; i < n_loci; ++i) {
    const Sequence wild_window = Sequence::random(probe_length, rng);
    const Sequence var_window = wild_window.with_mismatches(mismatches, rng);

    TargetSpecies wild;
    wild.sequence = wild_window;
    wild.concentration = concentration;
    wild.name = "locus" + std::to_string(i) + "_wt";
    TargetSpecies variant;
    variant.sequence = var_window;
    variant.concentration = concentration;
    variant.name = "locus" + std::to_string(i) + "_var";

    ProbeSpot wild_spot;
    wild_spot.probe = wild_window.reverse_complement();
    wild_spot.name = wild.name;
    ProbeSpot var_spot;
    var_spot.probe = var_window.reverse_complement();
    var_spot.name = variant.name;

    const bool carries_variant = rng.bernoulli(0.5);
    panel.catalog.push_back(wild);
    panel.catalog.push_back(variant);
    panel.spots.push_back(std::move(wild_spot));
    panel.spots.push_back(std::move(var_spot));
    panel.present.push_back(!carries_variant);
    panel.present.push_back(carries_variant);
    panel.sample.push_back(carries_variant ? variant : wild);
  }
  return panel;
}

AssayPanel expression_panel(int n_genes, double c_min, double c_max, Rng& rng,
                            std::size_t probe_length) {
  require(n_genes >= 1 && c_max >= c_min && c_min > 0.0,
          "expression_panel: invalid parameters");
  AssayPanel panel;
  for (int i = 0; i < n_genes; ++i) {
    TargetSpecies t;
    t.sequence = Sequence::random(150, rng);
    t.concentration = rng.log_uniform(c_min, c_max);
    t.name = "gene" + std::to_string(i);
    panel.catalog.push_back(t);
    panel.sample.push_back(t);
    panel.present.push_back(true);
  }
  panel.spots = MicroarrayAssay::design_probes(panel.catalog, probe_length);
  return panel;
}

double PanelScore::accuracy() const {
  const int total =
      true_positives + false_positives + true_negatives + false_negatives;
  if (total == 0) return 0.0;
  return static_cast<double>(true_positives + true_negatives) / total;
}

PanelScore score_panel(const AssayPanel& panel,
                       const std::vector<bool>& called_match) {
  require(called_match.size() == panel.present.size(),
          "score_panel: size mismatch");
  PanelScore s;
  for (std::size_t i = 0; i < panel.present.size(); ++i) {
    if (panel.present[i] && called_match[i]) ++s.true_positives;
    if (!panel.present[i] && called_match[i]) ++s.false_positives;
    if (!panel.present[i] && !called_match[i]) ++s.true_negatives;
    if (panel.present[i] && !called_match[i]) ++s.false_negatives;
  }
  return s;
}

}  // namespace biosense::dna
