#include "dna/optical.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biosense::dna {

FluorescenceScanner::FluorescenceScanner(FluorescenceScannerParams params,
                                         Rng rng)
    : params_(params), rng_(rng) {
  require(params.emission_rate > 0.0 && params.collection_eff > 0.0 &&
              params.detector_qe > 0.0,
          "FluorescenceScanner: optical chain must be positive");
  require(params.bleach_tau > 0.0 && params.dwell_time > 0.0,
          "FluorescenceScanner: times must be positive");
}

double FluorescenceScanner::expected_signal(double bound_labels,
                                            double prior_exposure) const {
  // Photobleaching: the emissive population decays as exp(-t/tau) under
  // excitation; integrate emission over the dwell window starting at
  // `prior_exposure` seconds of accumulated excitation.
  const double tau = params_.bleach_tau;
  const double t0 = prior_exposure;
  const double t1 = prior_exposure + params_.dwell_time;
  const double emitted_per_label =
      params_.emission_rate * tau *
      (std::exp(-t0 / tau) - std::exp(-t1 / tau));
  return bound_labels * params_.dyes_per_target * emitted_per_label *
         params_.collection_eff * params_.detector_qe;
}

SpotScan FluorescenceScanner::scan_spot(double bound_labels,
                                        double prior_exposure) {
  SpotScan out;
  out.photons_signal = expected_signal(bound_labels, prior_exposure);
  out.photons_dark = params_.dark_rate * params_.dwell_time;
  out.counts = rng_.poisson(out.photons_signal + out.photons_dark);
  // SNR against a background-subtracted measurement (background estimated
  // from an equal-length reference window -> 2B variance).
  out.snr = out.photons_signal /
            std::sqrt(out.photons_signal + 2.0 * out.photons_dark);
  return out;
}

double FluorescenceScanner::detection_limit_labels() const {
  // Solve S = 3 sqrt(S + 2B) for S, then convert to labels.
  const double b = params_.dark_rate * params_.dwell_time;
  // S^2 - 9S - 18B = 0.
  const double s = (9.0 + std::sqrt(81.0 + 72.0 * b)) / 2.0;
  const double per_label = expected_signal(1.0);
  return s / per_label;
}

}  // namespace biosense::dna
