#include "dna/electrochemistry.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::dna {

RedoxCyclingSensor::RedoxCyclingSensor(RedoxParams params, Rng rng)
    : params_(params), rng_(rng) {
  require(params.k_cat > Frequency(0.0), "Redox: k_cat must be positive");
  require(params.tau_res > Time(0.0), "Redox: tau_res must be positive");
  require(params.diffusion > Diffusivity(0.0) &&
              params.electrode_gap > Length(0.0),
          "Redox: diffusion geometry must be positive");
  require(params.collection_eff > 0.0 && params.collection_eff <= 1.0,
          "Redox: collection efficiency must be in (0,1]");
}

double RedoxCyclingSensor::current_per_molecule() const {
  // D / gap^2 has dimension 1/s — the diffusion shuttle frequency.
  const Frequency f_shuttle =
      params_.diffusion / (params_.electrode_gap * params_.electrode_gap);
  return params_.electrons_per_cycle * constants::kElectronCharge *
         f_shuttle.value() * params_.collection_eff;
}

double RedoxCyclingSensor::steady_state_population(double n_labels) const {
  // k_cat * tau_res is dimensionless (turnovers per residence time).
  return n_labels * (params_.k_cat * params_.tau_res);
}

double RedoxCyclingSensor::steady_state_current(double n_labels) const {
  return steady_state_population(n_labels) * current_per_molecule() +
         params_.background.value();
}

double RedoxCyclingSensor::step(double n_labels, double dt) {
  require(dt > 0.0, "Redox: dt must be positive");
  // Exact exponential update of dN/dt = G - N/tau.
  const double gen = std::max(0.0, n_labels) * params_.k_cat.value();
  const double target = gen * params_.tau_res.value();
  const double decay = std::exp(-dt / params_.tau_res.value());
  n_product_ = target + (n_product_ - target) * decay;

  // Slow multiplicative random-walk drift of the electrode background.
  drift_state_ *= 1.0 + rng_.normal(0.0, params_.drift_per_s * std::sqrt(dt));
  drift_state_ = std::clamp(drift_state_, 0.2, 5.0);

  return n_product_ * current_per_molecule() +
         params_.background.value() * drift_state_;
}

void RedoxCyclingSensor::reset() {
  n_product_ = 0.0;
  drift_state_ = 1.0;
}

}  // namespace biosense::dna
