// Assay panel generators: reusable, realistic workloads for examples,
// benches and stress tests. Three archetypes the paper's application space
// implies (diagnostics, genotyping, expression profiling).
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dna/assay.hpp"

namespace biosense::dna {

/// A generated panel: targets, designed probe spots, plus ground truth for
/// scoring a run.
struct AssayPanel {
  std::vector<TargetSpecies> catalog;   // everything the panel can detect
  std::vector<ProbeSpot> spots;         // one spot per catalog entry
  std::vector<TargetSpecies> sample;    // what is actually in the analyte
  std::vector<bool> present;            // per spot: should it light up?
};

/// Pathogen-identification panel: `n_organisms` random signature sequences;
/// the sample carries `n_present` of them at `concentration`.
AssayPanel pathogen_panel(int n_organisms, int n_present,
                          double concentration, Rng& rng,
                          std::size_t probe_length = 20,
                          std::size_t genome_length = 200);

/// SNP genotyping panel: for each of `n_loci` a wild-type window and a
/// variant with `mismatches` substitutions get adjacent spots; the sample
/// carries each locus in either wild-type or variant form at random.
/// Spots are ordered [wt0, var0, wt1, var1, ...]; `present[i]` marks the
/// allele actually in the sample.
AssayPanel snp_panel(int n_loci, std::size_t mismatches, double concentration,
                     Rng& rng, std::size_t probe_length = 20);

/// Expression panel: all `n_genes` present but spanning `decades` of
/// concentration (log-uniform); `present` is all-true, and the catalog's
/// concentrations are the ground-truth abundances.
AssayPanel expression_panel(int n_genes, double c_min, double c_max, Rng& rng,
                            std::size_t probe_length = 20);

/// Scores called matches against the panel's ground truth.
struct PanelScore {
  int true_positives = 0;
  int false_positives = 0;
  int true_negatives = 0;
  int false_negatives = 0;

  double accuracy() const;
};

PanelScore score_panel(const AssayPanel& panel,
                       const std::vector<bool>& called_match);

}  // namespace biosense::dna
