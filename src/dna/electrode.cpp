#include "dna/electrode.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biosense::dna {

InterdigitatedElectrode::InterdigitatedElectrode(IdeGeometry geometry)
    : geometry_(geometry) {
  require(geometry.fingers >= 2, "IDE: need at least two fingers");
  require(geometry.finger_length > Length(0.0) &&
              geometry.finger_width > Length(0.0) &&
              geometry.gap > Length(0.0),
          "IDE: geometry must be positive");
  require(geometry.diffusion > Diffusivity(0.0),
          "IDE: diffusion must be positive");
}

Area InterdigitatedElectrode::electrode_area() const {
  return geometry_.fingers * (geometry_.finger_length * geometry_.finger_width);
}

Area InterdigitatedElectrode::site_area() const {
  const Length pitch = geometry_.finger_width + geometry_.gap;
  return geometry_.fingers * (geometry_.finger_length * pitch);
}

Frequency InterdigitatedElectrode::shuttle_frequency() const {
  return geometry_.diffusion / (geometry_.gap * geometry_.gap);
}

double InterdigitatedElectrode::collection_efficiency() const {
  // Length/Length cancels to a pure ratio.
  return 1.0 / (1.0 + geometry_.gap / (0.7 * geometry_.finger_width));
}

Time InterdigitatedElectrode::residence_time() const {
  const Length pitch = geometry_.finger_width + geometry_.gap;
  // Molecules are effectively trapped within ~10 pitches of the surface
  // before random-walking away.
  const Length h_eff = 10.0 * pitch;
  return h_eff * h_eff / (2.0 * geometry_.diffusion);
}

RedoxParams InterdigitatedElectrode::redox_params(const RedoxParams& base) const {
  RedoxParams p = base;
  p.diffusion = geometry_.diffusion;
  p.electrode_gap = geometry_.gap;
  p.collection_eff = collection_efficiency();
  p.tau_res = residence_time();
  return p;
}

RandlesParams InterdigitatedElectrode::randles_params(
    const RandlesParams& base) const {
  RandlesParams p = base;
  // Gold/electrolyte double layer: ~0.2 F/m^2 (specific capacitance).
  constexpr double kSpecificCdl = 0.2;  // F per m^2
  p.c_double_layer = Capacitance(kSpecificCdl * electrode_area().value());
  // Cell constant of closely spaced combs: R_s ~ rho * gap / (overlap
  // area), with physiological-saline rho ~ 0.7 Ohm m and the facing area
  // of adjacent fingers.
  constexpr double kSalineRho = 0.7;  // Ohm m
  const Area facing_area = (geometry_.fingers - 1) *
                           (geometry_.finger_length *
                            geometry_.metal_thickness);
  p.r_solution =
      Resistance(kSalineRho * geometry_.gap.value() / facing_area.value());
  return p;
}

}  // namespace biosense::dna
