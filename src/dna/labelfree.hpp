// Label-free detection principles (Section 2, refs [7-11]).
//
// "Alternative label-free principles are under development. They focus on
// the effect of impedance or mass changes at the sensors' surfaces after
// hybridization." This module implements both families so they can be
// compared against the redox-cycling approach:
//
//  * Impedance sensor [7, 8]: the electrode/electrolyte interface is a
//    Randles network (solution resistance in series with the double-layer
//    capacitance parallel to a charge-transfer branch). Hybridization
//    densifies the molecular layer on the electrode: the double-layer
//    capacitance drops and the charge-transfer resistance rises. The chip
//    measures |Z| and phase at one or several frequencies.
//
//  * Mass sensor (film bulk acoustic resonator, FBAR [9-11]): bound DNA
//    adds mass to a resonator; the resonance frequency shifts down by the
//    Sauerbrey relation df = -S_m * dm with a sensitivity S_m set by the
//    resonator design. Detection = counting Hz against a reference
//    resonator.
#pragma once

#include <complex>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace biosense::dna {

// --- impedance (capacitive) sensing ----------------------------------------

struct RandlesParams {
  Resistance r_solution = 2.0_kOhm;
  Capacitance c_double_layer = 20.0_nF;   // bare electrode
  Resistance r_charge_transfer = 5.0_MOhm;  // bare electrode
  /// Relative double-layer capacitance drop at full hybridization
  /// coverage (theta = 1). Published values: 5..20 %.
  double cap_drop_full = 0.12;
  /// Relative charge-transfer resistance increase at full coverage.
  double rct_rise_full = 1.5;
};

class ImpedanceSensor {
 public:
  ImpedanceSensor(RandlesParams params, Rng rng);

  /// Complex impedance at frequency f for hybridization coverage theta.
  std::complex<double> impedance(double f_hz, double theta) const;

  /// |Z| relative change between bare and covered surface at f.
  double magnitude_contrast(double f_hz, double theta) const;

  /// Frequency at which d|Z|/dtheta is largest (searched over a log grid):
  /// where the chip should measure.
  double optimal_frequency(double f_lo = 10.0, double f_hi = 1e6) const;

  /// One noisy |Z| measurement (relative measurement noise `sigma_rel`).
  double measure_magnitude(double f_hz, double theta, double sigma_rel = 1e-3);

  const RandlesParams& params() const { return params_; }

 private:
  RandlesParams params_;
  Rng rng_;
};

// --- mass (FBAR) sensing -----------------------------------------------------

struct FbarParams {
  double f0 = 2e9;                // resonance frequency, Hz
  double q_factor = 800.0;        // loaded Q in liquid
  /// Mass sensitivity, Hz per kg/m^2 (Sauerbrey-type). ~2 GHz FBAR:
  /// ~ 2 kHz per ng/cm^2 -> 2e3 / 1e-8 kg/m^2.
  double mass_sensitivity = 2e11;
  /// Allan-deviation-limited frequency readout noise, Hz rms.
  double readout_noise = 300.0;
  /// Temperature coefficient of frequency, 1/K (uncompensated).
  double tcf = -20e-6;
};

class FbarSensor {
 public:
  FbarSensor(FbarParams params, Rng rng);

  /// Areal mass density of a hybridized DNA layer (kg/m^2) for a probe
  /// density (1/m^2), coverage theta and target length (bases).
  static double dna_areal_mass(double probe_density, double theta,
                               std::size_t target_bases);

  /// Resonance shift for an added areal mass (negative = down), Hz.
  double frequency_shift(double areal_mass) const;

  /// One noisy differential measurement (sensor minus reference resonator,
  /// which cancels the common temperature term to `temp_mismatch_k`).
  double measure_shift(double areal_mass, double temp_mismatch_k = 0.01);

  /// Smallest detectable areal mass (3 sigma of readout noise), kg/m^2.
  double mass_resolution() const;

  const FbarParams& params() const { return params_; }

 private:
  FbarParams params_;
  Rng rng_;
};

/// Comparison record used by the detection-principles bench.
struct DetectionComparison {
  double bound_fraction = 0.0;
  double redox_current = 0.0;       // A
  double impedance_contrast = 0.0;  // relative |Z| change
  double fbar_shift = 0.0;          // Hz
  bool redox_detectable = false;
  bool impedance_detectable = false;
  bool fbar_detectable = false;
};

}  // namespace biosense::dna
