#include "dna/hybridization.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace biosense::dna {

SpotKinetics::SpotKinetics(HybridizationParams params,
                           std::vector<BindingSpecies> species)
    : params_(params), species_(std::move(species)) {
  require(params_.ka > 0.0, "SpotKinetics: ka must be positive");
  for (const auto& s : species_) {
    require(s.concentration >= 0.0 && s.kd > 0.0 && s.theta >= 0.0,
            "SpotKinetics: invalid species");
  }
}

void SpotKinetics::step(double dt) {
  // Exponential (exact per-species) integrator: during a substep the
  // occupancy of the competing species is frozen, which makes each
  // species' ODE linear and solvable in closed form. Only the coupling
  // between species needs to be resolved by substepping — not the
  // (possibly very stiff) wash-off rate — so weak binders with
  // k_d >> 1/s are handled unconditionally stably.
  double coupling_rate = 0.0;
  for (const auto& s : species_) {
    coupling_rate += params_.ka * s.concentration;
  }
  const int substeps = std::min(
      100000,
      std::max(1, static_cast<int>(std::ceil(dt * coupling_rate * 5.0))));
  const double h = dt / substeps;

  for (int n = 0; n < substeps; ++n) {
    double total = 0.0;
    for (const auto& s : species_) total += s.theta;
    for (auto& s : species_) {
      // Freeze the occupancy of the *other* species; then
      // d theta/dt = a - b theta with
      //   a = ka C (1 - S_other),  b = ka (C + kd),
      // solved exactly over the substep.
      const double s_other = std::max(0.0, total - s.theta);
      const double a = params_.ka * s.concentration * (1.0 - s_other);
      const double b = params_.ka * (s.concentration + s.kd);
      const double eq = a / b;  // b > 0 because kd > 0
      s.theta = std::clamp(eq + (s.theta - eq) * std::exp(-b * h), 0.0, 1.0);
    }
  }
}

void SpotKinetics::hybridize(double duration, double dt) {
  if (washing_) {
    for (std::size_t i = 0; i < species_.size(); ++i) {
      species_[i].concentration = saved_conc_[i];
    }
    washing_ = false;
  }
  for (double t = 0.0; t < duration; t += dt) {
    step(std::min(dt, duration - t));
  }
}

void SpotKinetics::wash(double duration, double dt) {
  if (!washing_) {
    saved_conc_.clear();
    for (auto& s : species_) {
      saved_conc_.push_back(s.concentration);
      s.concentration = 0.0;
    }
    washing_ = true;
  }
  for (double t = 0.0; t < duration; t += dt) {
    step(std::min(dt, duration - t));
  }
}

double SpotKinetics::equilibrium_theta(std::size_t i) const {
  double denom = 1.0;
  for (const auto& s : species_) denom += s.concentration / s.kd;
  const auto& si = species_.at(i);
  return (si.concentration / si.kd) / denom;
}

double SpotKinetics::total_theta() const {
  double t = 0.0;
  for (const auto& s : species_) t += s.theta;
  return t;
}

}  // namespace biosense::dna
