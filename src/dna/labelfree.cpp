#include "dna/labelfree.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::dna {

ImpedanceSensor::ImpedanceSensor(RandlesParams params, Rng rng)
    : params_(params), rng_(rng) {
  require(params.r_solution > Resistance(0.0) &&
              params.c_double_layer > Capacitance(0.0) &&
              params.r_charge_transfer > Resistance(0.0),
          "ImpedanceSensor: network elements must be positive");
  require(params.cap_drop_full >= 0.0 && params.cap_drop_full < 1.0,
          "ImpedanceSensor: capacitance drop must be in [0,1)");
}

std::complex<double> ImpedanceSensor::impedance(double f_hz,
                                                double theta) const {
  require(f_hz > 0.0, "ImpedanceSensor: frequency must be positive");
  const double cdl =
      (params_.c_double_layer * (1.0 - params_.cap_drop_full * theta)).value();
  const double rct =
      (params_.r_charge_transfer * (1.0 + params_.rct_rise_full * theta))
          .value();
  const std::complex<double> jw(0.0, 2.0 * constants::kPi * f_hz);
  // Randles: Rs + (Cdl || Rct).
  const std::complex<double> z_c = 1.0 / (jw * cdl);
  const std::complex<double> z_par = z_c * rct / (z_c + rct);
  return params_.r_solution.value() + z_par;
}

double ImpedanceSensor::magnitude_contrast(double f_hz, double theta) const {
  const double bare = std::abs(impedance(f_hz, 0.0));
  const double covered = std::abs(impedance(f_hz, theta));
  return (covered - bare) / bare;
}

double ImpedanceSensor::optimal_frequency(double f_lo, double f_hi) const {
  require(f_hi > f_lo && f_lo > 0.0, "ImpedanceSensor: bad search band");
  double best_f = f_lo;
  double best = 0.0;
  for (double f = f_lo; f <= f_hi * 1.0001; f *= 1.2) {
    const double c = std::abs(magnitude_contrast(f, 1.0));
    if (c > best) {
      best = c;
      best_f = f;
    }
  }
  return best_f;
}

double ImpedanceSensor::measure_magnitude(double f_hz, double theta,
                                          double sigma_rel) {
  const double z = std::abs(impedance(f_hz, theta));
  return z * (1.0 + rng_.normal(0.0, sigma_rel));
}

FbarSensor::FbarSensor(FbarParams params, Rng rng)
    : params_(params), rng_(rng) {
  require(params.f0 > 0.0 && params.q_factor > 0.0,
          "FbarSensor: resonator parameters must be positive");
  require(params.mass_sensitivity > 0.0,
          "FbarSensor: sensitivity must be positive");
}

double FbarSensor::dna_areal_mass(double probe_density, double theta,
                                  std::size_t target_bases) {
  require(probe_density >= 0.0 && theta >= 0.0 && theta <= 1.0,
          "FbarSensor: invalid coverage");
  // ~660 g/mol per base pair; bound target adds its single strand
  // (~330 g/mol per base).
  const double kg_per_target =
      330.0 * static_cast<double>(target_bases) / constants::kAvogadro / 1e3;
  return probe_density * theta * kg_per_target;
}

double FbarSensor::frequency_shift(double areal_mass) const {
  return -params_.mass_sensitivity * areal_mass;
}

double FbarSensor::measure_shift(double areal_mass, double temp_mismatch_k) {
  const double thermal =
      params_.f0 * params_.tcf * rng_.normal(0.0, temp_mismatch_k);
  return frequency_shift(areal_mass) + thermal +
         rng_.normal(0.0, params_.readout_noise * std::sqrt(2.0));
}

double FbarSensor::mass_resolution() const {
  // Differential measurement doubles the noise power; 3-sigma criterion.
  return 3.0 * params_.readout_noise * std::sqrt(2.0) /
         params_.mass_sensitivity;
}

}  // namespace biosense::dna
