#include "noise/mismatch.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biosense::noise {

MismatchSampler::MismatchSampler(PelgromCoefficients coeffs, Rng rng)
    : coeffs_(coeffs), rng_(rng) {
  require(coeffs.a_vt >= 0.0 && coeffs.a_beta >= 0.0,
          "MismatchSampler: Pelgrom coefficients must be non-negative");
}

double MismatchSampler::sigma_vt(double width_m, double length_m) const {
  require(width_m > 0.0 && length_m > 0.0,
          "MismatchSampler: device geometry must be positive");
  return coeffs_.a_vt / std::sqrt(width_m * length_m);
}

double MismatchSampler::sigma_beta(double width_m, double length_m) const {
  require(width_m > 0.0 && length_m > 0.0,
          "MismatchSampler: device geometry must be positive");
  return coeffs_.a_beta / std::sqrt(width_m * length_m);
}

DeviceMismatch MismatchSampler::sample(double width_m, double length_m) {
  DeviceMismatch m;
  m.delta_vt = rng_.normal(0.0, sigma_vt(width_m, length_m));
  // Clamp the multiplicative error to stay physical for very small devices.
  const double rel = rng_.normal(0.0, sigma_beta(width_m, length_m));
  m.beta_ratio = std::max(0.1, 1.0 + rel);
  return m;
}

}  // namespace biosense::noise
