#include "noise/sources.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::noise {

WhiteNoise::WhiteNoise(double psd_one_sided, Rng rng)
    : psd_(psd_one_sided), rng_(rng) {
  require(psd_one_sided >= 0.0, "WhiteNoise: PSD must be non-negative");
}

double WhiteNoise::sample(double dt) {
  require(dt > 0.0, "WhiteNoise: dt must be positive");
  // Band-limited to Nyquist: variance = S * f_s / 2 = S / (2 dt).
  const double sigma = std::sqrt(psd_ / (2.0 * dt));
  return rng_.normal(0.0, sigma);
}

double thermal_voltage_psd(double resistance_ohm, double temp_k) {
  return 4.0 * constants::kBoltzmann * temp_k * resistance_ohm;
}

double mosfet_thermal_current_psd(double gm, double temp_k, double gamma) {
  return 4.0 * constants::kBoltzmann * temp_k * gamma * gm;
}

double shot_current_psd(double dc_current_a) {
  return 2.0 * constants::kElectronCharge * std::abs(dc_current_a);
}

FlickerPlan::FlickerPlan(double kf, double f_lo, double f_hi,
                         int poles_per_decade) {
  require(kf >= 0.0, "FlickerNoise: kf must be non-negative");
  require(f_hi > f_lo && f_lo > 0.0, "FlickerNoise: need 0 < f_lo < f_hi");
  require(poles_per_decade >= 1, "FlickerNoise: need >= 1 pole per decade");
  // Identical pole placement to the FlickerNoise constructor below.
  const double ratio = std::pow(10.0, 1.0 / poles_per_decade);
  sigma2 = kf * std::log(ratio);
  state_sigma = std::sqrt(sigma2);
  for (double fc = f_lo; fc <= f_hi * (1.0 + 1e-12); fc *= ratio) {
    tau.push_back(1.0 / (2.0 * constants::kPi * fc));
  }
}

void FlickerStepConsts::prepare(const FlickerPlan& plan, double dt) {
  a.resize(plan.poles());
  s.resize(plan.poles());
  for (std::size_t k = 0; k < plan.poles(); ++k) {
    a[k] = std::exp(-dt / plan.tau[k]);
    s[k] = std::sqrt(plan.sigma2 * (1.0 - a[k] * a[k]));
  }
}

FlickerNoise::FlickerNoise(double kf, double f_lo, double f_hi, Rng rng,
                           int poles_per_decade)
    : rng_(rng) {
  require(kf >= 0.0, "FlickerNoise: kf must be non-negative");
  require(f_hi > f_lo && f_lo > 0.0, "FlickerNoise: need 0 < f_lo < f_hi");
  require(poles_per_decade >= 1, "FlickerNoise: need >= 1 pole per decade");

  // Sum of OU processes with corner frequencies log-spaced at ratio
  // r = 10^(1/poles_per_decade). With per-pole stationary variance
  // sigma2 = kf * ln(r), the summed one-sided PSD approximates kf/f
  // across [f_lo, f_hi] (see analytic_psd for the exact sum).
  const double ratio = std::pow(10.0, 1.0 / poles_per_decade);
  const double sigma2 = kf * std::log(ratio);
  for (double fc = f_lo; fc <= f_hi * (1.0 + 1e-12); fc *= ratio) {
    Pole p;
    p.tau = 1.0 / (2.0 * constants::kPi * fc);
    p.sigma2 = sigma2;
    // Start each pole in its stationary distribution so the process has no
    // warm-up transient.
    p.state = rng_.normal(0.0, std::sqrt(sigma2));
    poles_.push_back(p);
  }
}

double FlickerNoise::sample(double dt) {
  double sum = 0.0;
  for (auto& p : poles_) {
    const double a = std::exp(-dt / p.tau);
    p.state = p.state * a + rng_.normal(0.0, std::sqrt(p.sigma2 * (1.0 - a * a)));
    sum += p.state;
  }
  return sum;
}

double FlickerNoise::analytic_psd(double f) const {
  // One-sided PSD of an OU process: S(f) = 4 sigma2 tau / (1 + (2 pi f tau)^2)
  double s = 0.0;
  for (const auto& p : poles_) {
    const double w = 2.0 * constants::kPi * f * p.tau;
    s += 4.0 * p.sigma2 * p.tau / (1.0 + w * w);
  }
  return s;
}

RtsNoise::RtsNoise(double amplitude, double mean_time_high,
                   double mean_time_low, Rng rng)
    : amplitude_(amplitude),
      rate_down_(1.0 / mean_time_high),
      rate_up_(1.0 / mean_time_low),
      rng_(rng) {
  require(mean_time_high > 0.0 && mean_time_low > 0.0,
          "RtsNoise: dwell times must be positive");
  // Start in the stationary distribution.
  const double p_high = mean_time_high / (mean_time_high + mean_time_low);
  high_ = rng_.bernoulli(p_high);
}

double RtsNoise::sample(double dt) {
  const double rate = high_ ? rate_down_ : rate_up_;
  if (rng_.bernoulli(1.0 - std::exp(-rate * dt))) high_ = !high_;
  return high_ ? 0.5 * amplitude_ : -0.5 * amplitude_;
}

void CompositeNoise::add_white(double psd_one_sided, Rng rng) {
  white_.emplace_back(psd_one_sided, rng);
  white_psd_.push_back(psd_one_sided);
}

void CompositeNoise::add_flicker(double kf, double f_lo, double f_hi, Rng rng) {
  flicker_.emplace_back(kf, f_lo, f_hi, rng);
  flicker_kf_.push_back(kf);
}

void CompositeNoise::add_rts(double amplitude, double t_high, double t_low,
                             Rng rng) {
  rts_.emplace_back(amplitude, t_high, t_low, rng);
}

double CompositeNoise::sample(double dt) {
  double sum = 0.0;
  for (auto& s : white_) sum += s.sample(dt);
  for (auto& s : flicker_) sum += s.sample(dt);
  for (auto& s : rts_) sum += s.sample(dt);
  return sum;
}

double CompositeNoise::analytic_rms(double f_lo, double f_hi) const {
  // White integrates to S*(f_hi-f_lo); ideal 1/f integrates to
  // kf*ln(f_hi/f_lo). RTS is excluded (its PSD depends on dwell times and
  // it is rarely part of a band-integrated budget).
  double var = 0.0;
  for (double s : white_psd_) var += s * (f_hi - f_lo);
  for (double kf : flicker_kf_) var += kf * std::log(f_hi / f_lo);
  return std::sqrt(var);
}

}  // namespace biosense::noise
