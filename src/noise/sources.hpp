// Discrete-time noise source models.
//
// All sources follow the same convention: `sample(dt)` advances the source
// by one simulation step of length `dt` seconds and returns the
// instantaneous noise value for that step. White sources are modeled as
// band-limited to the Nyquist frequency of the sampling step (variance =
// one-sided PSD * 1/(2 dt)), which is the correct discrete-time equivalent
// for a sampled continuous system.
//
// These models feed the sensor-site ADC (comparator noise, leakage), the
// neural pixel (input-referred transistor noise) and the electrochemical
// current model (shot noise on pA-level currents).
#pragma once

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::noise {

/// Discrete-step sigma of band-limited white noise with the given one-sided
/// PSD: variance = S * f_s / 2 = S / (2 dt). This is the per-frame-hoisted
/// form of WhiteNoise::sample's internal sigma — a bank of same-PSD sources
/// computes it once and draws rng.normal(0, sigma) per source.
inline double white_step_sigma(double psd_one_sided, double dt) {
  return std::sqrt(psd_one_sided / (2.0 * dt));
}

/// Frozen configuration of a FlickerNoise pole bank (identical pole
/// placement to the FlickerNoise constructor), shared by every source in a
/// plane-structured bank: per-pole OU time constants plus the common
/// stationary variance. The per-source evolving state (pole values + draw
/// stream) lives in the owner's planes.
struct FlickerPlan {
  std::vector<double> tau;     // OU time constant per pole
  double sigma2 = 0.0;         // stationary variance per pole
  double state_sigma = 0.0;    // sqrt(sigma2): initial-state draw sigma

  FlickerPlan() = default;
  FlickerPlan(double kf, double f_lo, double f_hi, int poles_per_decade = 2);

  std::size_t poles() const { return tau.size(); }
};

/// Per-dt step constants of a FlickerPlan: the decay a = exp(-dt/tau) and
/// innovation sigma sqrt(sigma2*(1-a^2)) of every pole, hoisted once per
/// frame instead of recomputed per pixel per pole.
struct FlickerStepConsts {
  std::vector<double> a;
  std::vector<double> s;

  void prepare(const FlickerPlan& plan, double dt);
  std::size_t poles() const { return a.size(); }
};

/// Draws the stationary initial state of each pole into a strided plane
/// (`states[k * stride]` for pole k), matching the FlickerNoise
/// constructor's draw order.
inline void flicker_init_strided(const FlickerPlan& plan, Rng& rng,
                                 double* states, std::size_t stride) {
  for (std::size_t k = 0; k < plan.poles(); ++k) {
    states[k * stride] = rng.normal(0.0, plan.state_sigma);
  }
}

/// One flicker sample from strided pole state: advances every pole by the
/// prepared step constants and returns the sum — bit-identical to
/// FlickerNoise::sample(dt) at the dt the constants were prepared for.
inline double flicker_sample_strided(const FlickerStepConsts& c, Rng& rng,
                                     double* states, std::size_t stride) {
  double sum = 0.0;
  for (std::size_t k = 0; k < c.a.size(); ++k) {
    double& st = states[k * stride];
    st = st * c.a[k] + rng.normal(0.0, c.s[k]);
    sum += st;
  }
  return sum;
}

/// Band-limited white noise with a given one-sided PSD (units^2/Hz).
class WhiteNoise {
 public:
  /// `psd_one_sided` in units^2/Hz. For a resistor's Johnson voltage noise
  /// use `thermal_voltage_psd`; for shot noise use `shot_current_psd`.
  WhiteNoise(double psd_one_sided, Rng rng);

  double sample(double dt);
  double psd() const { return psd_; }

  /// Evolving state only (the PSD is frozen config): the draw stream.
  void save_state(snapshot::StateWriter& w) const { w.rng(rng_); }
  void load_state(snapshot::StateReader& r) { r.rng(rng_); }

 private:
  double psd_;  // analyze:transient - frozen config
  Rng rng_;
};

/// One-sided Johnson (thermal) voltage-noise PSD of a resistance:
/// S_v = 4 k T R  [V^2/Hz].
double thermal_voltage_psd(double resistance_ohm, double temp_k);

/// Typed overload: dimension-checked resistance in, V^2/Hz quantity out.
inline VoltagePsd thermal_voltage_psd(Resistance r, double temp_k) {
  return VoltagePsd(thermal_voltage_psd(r.value(), temp_k));
}

/// One-sided thermal channel-current PSD of a MOSFET in saturation:
/// S_i = 4 k T gamma g_m [A^2/Hz], gamma ~ 2/3 long channel.
double mosfet_thermal_current_psd(double gm, double temp_k,
                                  double gamma = 2.0 / 3.0);

/// Typed overload: transconductance in, A^2/Hz quantity out.
inline CurrentPsd mosfet_thermal_current_psd(Conductance gm, double temp_k,
                                             double gamma = 2.0 / 3.0) {
  return CurrentPsd(mosfet_thermal_current_psd(gm.value(), temp_k, gamma));
}

/// One-sided shot-noise current PSD of a DC current: S_i = 2 q I [A^2/Hz].
double shot_current_psd(double dc_current_a);

/// Typed overload: dimension-checked DC current in, A^2/Hz quantity out.
inline CurrentPsd shot_current_psd(Current i) {
  return CurrentPsd(shot_current_psd(i.value()));
}

/// 1/f (flicker) noise synthesized as a sum of Ornstein-Uhlenbeck processes
/// with log-spaced corner frequencies. The resulting one-sided PSD
/// approximates S(f) = k_f / f over [f_lo, f_hi] to within a fraction of a
/// dB (validated by tests/noise against the Welch estimator).
class FlickerNoise {
 public:
  /// `kf` is the PSD coefficient: S(f) = kf / f in units^2/Hz.
  /// [f_lo, f_hi] is the frequency band over which the 1/f shape is
  /// synthesized; poles are placed `poles_per_decade` per decade.
  FlickerNoise(double kf, double f_lo, double f_hi, Rng rng,
               int poles_per_decade = 2);

  double sample(double dt);

  /// Analytic one-sided PSD of the synthesized process at frequency f;
  /// used by tests to compare against the 1/f target.
  double analytic_psd(double f) const;

  /// Draw stream + the OU pole states (tau/sigma2 are frozen config).
  void save_state(snapshot::StateWriter& w) const {
    w.rng(rng_);
    w.u32(static_cast<std::uint32_t>(poles_.size()));
    for (const Pole& p : poles_) w.f64(p.state);
  }
  void load_state(snapshot::StateReader& r) {
    r.rng(rng_);
    if (r.u32() != poles_.size()) {
      r.fail();
      return;
    }
    for (Pole& p : poles_) p.state = r.f64();
  }

 private:
  struct Pole {
    double tau = 0.0;     // OU time constant
    double sigma2 = 0.0;  // stationary variance contribution
    double state = 0.0;
  };
  std::vector<Pole> poles_;
  Rng rng_;
};

/// Random telegraph signal: two-state Markov process toggling between
/// +amplitude/2 and -amplitude/2 with mean capture/emission times.
/// Models single-trap RTS noise in small-area MOSFETs.
class RtsNoise {
 public:
  RtsNoise(double amplitude, double mean_time_high, double mean_time_low,
           Rng rng);

  double sample(double dt);
  bool high() const { return high_; }

  void save_state(snapshot::StateWriter& w) const {
    w.rng(rng_);
    w.b(high_);
  }
  void load_state(snapshot::StateReader& r) {
    r.rng(rng_);
    high_ = r.b();
  }

 private:
  double amplitude_;  // analyze:transient - frozen config
  double rate_down_;  // 1/mean_time_high; analyze:transient - frozen config
  double rate_up_;    // 1/mean_time_low; analyze:transient - frozen config
  bool high_;
  Rng rng_;
};

/// Composite input-referred noise for an analog front-end: white + flicker
/// (+ optional RTS), all referred to one node.
class CompositeNoise {
 public:
  CompositeNoise() = default;

  void add_white(double psd_one_sided, Rng rng);
  void add_flicker(double kf, double f_lo, double f_hi, Rng rng);
  void add_rts(double amplitude, double t_high, double t_low, Rng rng);

  double sample(double dt);

  /// Integrated RMS over the band [f_lo, f_hi] predicted analytically from
  /// the configured PSDs (white: S*(f_hi-f_lo); flicker: kf*ln(f_hi/f_lo)).
  double analytic_rms(double f_lo, double f_hi) const;

  /// The source composition is frozen at wiring time, so the counts act as
  /// shape checks and only per-source evolving state is serialized.
  void save_state(snapshot::StateWriter& w) const {
    w.u32(static_cast<std::uint32_t>(white_.size()));
    for (const WhiteNoise& s : white_) s.save_state(w);
    w.u32(static_cast<std::uint32_t>(flicker_.size()));
    for (const FlickerNoise& s : flicker_) s.save_state(w);
    w.u32(static_cast<std::uint32_t>(rts_.size()));
    for (const RtsNoise& s : rts_) s.save_state(w);
  }
  void load_state(snapshot::StateReader& r) {
    if (r.u32() != white_.size()) {
      r.fail();
      return;
    }
    for (WhiteNoise& s : white_) s.load_state(r);
    if (r.u32() != flicker_.size()) {
      r.fail();
      return;
    }
    for (FlickerNoise& s : flicker_) s.load_state(r);
    if (r.u32() != rts_.size()) {
      r.fail();
      return;
    }
    for (RtsNoise& s : rts_) s.load_state(r);
  }

 private:
  std::vector<WhiteNoise> white_;
  std::vector<FlickerNoise> flicker_;
  std::vector<RtsNoise> rts_;
  std::vector<double> white_psd_;    // analyze:transient - frozen config
  std::vector<double> flicker_kf_;   // analyze:transient - frozen config
};

}  // namespace biosense::noise
