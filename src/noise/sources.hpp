// Discrete-time noise source models.
//
// All sources follow the same convention: `sample(dt)` advances the source
// by one simulation step of length `dt` seconds and returns the
// instantaneous noise value for that step. White sources are modeled as
// band-limited to the Nyquist frequency of the sampling step (variance =
// one-sided PSD * 1/(2 dt)), which is the correct discrete-time equivalent
// for a sampled continuous system.
//
// These models feed the sensor-site ADC (comparator noise, leakage), the
// neural pixel (input-referred transistor noise) and the electrochemical
// current model (shot noise on pA-level currents).
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::noise {

/// Band-limited white noise with a given one-sided PSD (units^2/Hz).
class WhiteNoise {
 public:
  /// `psd_one_sided` in units^2/Hz. For a resistor's Johnson voltage noise
  /// use `thermal_voltage_psd`; for shot noise use `shot_current_psd`.
  WhiteNoise(double psd_one_sided, Rng rng);

  double sample(double dt);
  double psd() const { return psd_; }

  /// Evolving state only (the PSD is frozen config): the draw stream.
  void save_state(snapshot::StateWriter& w) const { w.rng(rng_); }
  void load_state(snapshot::StateReader& r) { r.rng(rng_); }

 private:
  double psd_;  // analyze:transient - frozen config
  Rng rng_;
};

/// One-sided Johnson (thermal) voltage-noise PSD of a resistance:
/// S_v = 4 k T R  [V^2/Hz].
double thermal_voltage_psd(double resistance_ohm, double temp_k);

/// Typed overload: dimension-checked resistance in, V^2/Hz quantity out.
inline VoltagePsd thermal_voltage_psd(Resistance r, double temp_k) {
  return VoltagePsd(thermal_voltage_psd(r.value(), temp_k));
}

/// One-sided thermal channel-current PSD of a MOSFET in saturation:
/// S_i = 4 k T gamma g_m [A^2/Hz], gamma ~ 2/3 long channel.
double mosfet_thermal_current_psd(double gm, double temp_k,
                                  double gamma = 2.0 / 3.0);

/// Typed overload: transconductance in, A^2/Hz quantity out.
inline CurrentPsd mosfet_thermal_current_psd(Conductance gm, double temp_k,
                                             double gamma = 2.0 / 3.0) {
  return CurrentPsd(mosfet_thermal_current_psd(gm.value(), temp_k, gamma));
}

/// One-sided shot-noise current PSD of a DC current: S_i = 2 q I [A^2/Hz].
double shot_current_psd(double dc_current_a);

/// Typed overload: dimension-checked DC current in, A^2/Hz quantity out.
inline CurrentPsd shot_current_psd(Current i) {
  return CurrentPsd(shot_current_psd(i.value()));
}

/// 1/f (flicker) noise synthesized as a sum of Ornstein-Uhlenbeck processes
/// with log-spaced corner frequencies. The resulting one-sided PSD
/// approximates S(f) = k_f / f over [f_lo, f_hi] to within a fraction of a
/// dB (validated by tests/noise against the Welch estimator).
class FlickerNoise {
 public:
  /// `kf` is the PSD coefficient: S(f) = kf / f in units^2/Hz.
  /// [f_lo, f_hi] is the frequency band over which the 1/f shape is
  /// synthesized; poles are placed `poles_per_decade` per decade.
  FlickerNoise(double kf, double f_lo, double f_hi, Rng rng,
               int poles_per_decade = 2);

  double sample(double dt);

  /// Analytic one-sided PSD of the synthesized process at frequency f;
  /// used by tests to compare against the 1/f target.
  double analytic_psd(double f) const;

  /// Draw stream + the OU pole states (tau/sigma2 are frozen config).
  void save_state(snapshot::StateWriter& w) const {
    w.rng(rng_);
    w.u32(static_cast<std::uint32_t>(poles_.size()));
    for (const Pole& p : poles_) w.f64(p.state);
  }
  void load_state(snapshot::StateReader& r) {
    r.rng(rng_);
    if (r.u32() != poles_.size()) {
      r.fail();
      return;
    }
    for (Pole& p : poles_) p.state = r.f64();
  }

 private:
  struct Pole {
    double tau = 0.0;     // OU time constant
    double sigma2 = 0.0;  // stationary variance contribution
    double state = 0.0;
  };
  std::vector<Pole> poles_;
  Rng rng_;
};

/// Random telegraph signal: two-state Markov process toggling between
/// +amplitude/2 and -amplitude/2 with mean capture/emission times.
/// Models single-trap RTS noise in small-area MOSFETs.
class RtsNoise {
 public:
  RtsNoise(double amplitude, double mean_time_high, double mean_time_low,
           Rng rng);

  double sample(double dt);
  bool high() const { return high_; }

  void save_state(snapshot::StateWriter& w) const {
    w.rng(rng_);
    w.b(high_);
  }
  void load_state(snapshot::StateReader& r) {
    r.rng(rng_);
    high_ = r.b();
  }

 private:
  double amplitude_;  // analyze:transient - frozen config
  double rate_down_;  // 1/mean_time_high; analyze:transient - frozen config
  double rate_up_;    // 1/mean_time_low; analyze:transient - frozen config
  bool high_;
  Rng rng_;
};

/// Composite input-referred noise for an analog front-end: white + flicker
/// (+ optional RTS), all referred to one node.
class CompositeNoise {
 public:
  CompositeNoise() = default;

  void add_white(double psd_one_sided, Rng rng);
  void add_flicker(double kf, double f_lo, double f_hi, Rng rng);
  void add_rts(double amplitude, double t_high, double t_low, Rng rng);

  double sample(double dt);

  /// Integrated RMS over the band [f_lo, f_hi] predicted analytically from
  /// the configured PSDs (white: S*(f_hi-f_lo); flicker: kf*ln(f_hi/f_lo)).
  double analytic_rms(double f_lo, double f_hi) const;

  /// The source composition is frozen at wiring time, so the counts act as
  /// shape checks and only per-source evolving state is serialized.
  void save_state(snapshot::StateWriter& w) const {
    w.u32(static_cast<std::uint32_t>(white_.size()));
    for (const WhiteNoise& s : white_) s.save_state(w);
    w.u32(static_cast<std::uint32_t>(flicker_.size()));
    for (const FlickerNoise& s : flicker_) s.save_state(w);
    w.u32(static_cast<std::uint32_t>(rts_.size()));
    for (const RtsNoise& s : rts_) s.save_state(w);
  }
  void load_state(snapshot::StateReader& r) {
    if (r.u32() != white_.size()) {
      r.fail();
      return;
    }
    for (WhiteNoise& s : white_) s.load_state(r);
    if (r.u32() != flicker_.size()) {
      r.fail();
      return;
    }
    for (FlickerNoise& s : flicker_) s.load_state(r);
    if (r.u32() != rts_.size()) {
      r.fail();
      return;
    }
    for (RtsNoise& s : rts_) s.load_state(r);
  }

 private:
  std::vector<WhiteNoise> white_;
  std::vector<FlickerNoise> flicker_;
  std::vector<RtsNoise> rts_;
  std::vector<double> white_psd_;    // analyze:transient - frozen config
  std::vector<double> flicker_kf_;   // analyze:transient - frozen config
};

}  // namespace biosense::noise
