// Device-to-device parameter variation (mismatch).
//
// Matching of identically drawn MOS transistors follows the Pelgrom model:
// the standard deviation of the difference of a parameter P between two
// devices scales as sigma(dP) = A_P / sqrt(W * L), with the area in um^2
// and A_P a process constant. For the 0.5 um / 15 nm gate-oxide process of
// the paper's chips, A_VT is on the order of 10..15 mV*um — which is why a
// neural pixel whose useful signal is 100 uV *must* be calibrated (Fig. 6):
// raw V_T spread is two orders of magnitude above the signal.
//
// `MismatchSampler` draws per-device offsets for threshold voltage and
// current factor; deterministic given the seed, so a simulated chip has a
// frozen, reproducible mismatch map like a real die.
#pragma once

#include "common/rng.hpp"
#include "snapshot/state_io.hpp"

namespace biosense::noise {

/// Process matching constants (Pelgrom coefficients).
struct PelgromCoefficients {
  /// Threshold-voltage matching, V*m (e.g. 12 mV*um = 12e-9 V*m).
  double a_vt = 12e-9;
  /// Relative current-factor matching, (dimensionless)*m
  /// (e.g. 2 %*um = 0.02e-6).
  double a_beta = 0.02e-6;
};

/// Per-device sampled offsets.
struct DeviceMismatch {
  double delta_vt = 0.0;    // V, additive threshold shift
  double beta_ratio = 1.0;  // multiplicative current-factor error
};

class MismatchSampler {
 public:
  MismatchSampler(PelgromCoefficients coeffs, Rng rng);

  /// Draws the mismatch of one device with gate area `width_m` x `length_m`.
  DeviceMismatch sample(double width_m, double length_m);

  /// Standard deviation of delta-VT for the given geometry.
  double sigma_vt(double width_m, double length_m) const;

  /// Standard deviation of the relative current-factor error.
  double sigma_beta(double width_m, double length_m) const;

  /// The sampler's draw position (devices sampled so far); coefficients
  /// are frozen config.
  void save_state(snapshot::StateWriter& w) const { w.rng(rng_); }
  void load_state(snapshot::StateReader& r) { r.rng(rng_); }

 private:
  PelgromCoefficients coeffs_;  // analyze:transient - frozen config
  Rng rng_;
};

}  // namespace biosense::noise
