#include "neuro/stimulation.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biosense::neuro {

namespace {
// HH membrane capacitance per area in SI: 1 uF/cm^2 = 1e-2 F/m^2.
constexpr double kMembraneCapSi = 1e-2;
}  // namespace

CapacitiveStimulator::CapacitiveStimulator(JunctionParams junction)
    : junction_(junction),
      cap_per_area_(junction.dielectric_cap_per_area) {
  require(cap_per_area_ > 0.0,
          "CapacitiveStimulator: dielectric capacitance must be positive");
}

double CapacitiveStimulator::voltage_coupling() const {
  return cap_per_area_ / (cap_per_area_ + kMembraneCapSi);
}

double CapacitiveStimulator::coupling_current_density(double dv_dt) const {
  // Series capacitance of dielectric and membrane per area times the slew.
  const double c_series =
      cap_per_area_ * kMembraneCapSi / (cap_per_area_ + kMembraneCapSi);
  return c_series * dv_dt;
}

StimulationResult CapacitiveStimulator::stimulate(const StimulusPulse& pulse,
                                                  double duration,
                                                  double dt) const {
  require(pulse.rise_time > 0.0 && pulse.width > 0.0,
          "CapacitiveStimulator: invalid pulse shape");
  HodgkinHuxley hh;
  StimulationResult out;
  out.v_m.reserve(static_cast<std::size_t>(duration / dt) + 1);

  const double v_rest = hh.v_m();
  const double dv_membrane = pulse.amplitude * voltage_coupling();
  const double t_on = 0.5e-3;  // pulse onset
  bool rising_done = false;
  bool falling_done = false;

  for (double t = 0.0; t < duration; t += dt) {
    // Fast-edge limit: each electrode edge couples as an instantaneous
    // membrane voltage step through the capacitive divider (the membrane
    // then discharges through its own conductances).
    if (!rising_done && t >= t_on) {
      hh.add_voltage(dv_membrane);
      rising_done = true;
    }
    if (pulse.biphasic && !falling_done && t >= t_on + pulse.width) {
      hh.add_voltage(-dv_membrane);
      falling_done = true;
    }
    hh.step(0.0, dt);
    out.v_m.push_back(hh.v_m());
    out.peak_depolarization =
        std::max(out.peak_depolarization, hh.v_m() - v_rest);
    if (!out.evoked_spike && hh.v_m() > 0.0 && t > t_on + 2.0 * dt) {
      out.evoked_spike = true;
      out.spike_latency = t - t_on;
    }
  }
  return out;
}

double CapacitiveStimulator::threshold_amplitude(StimulusPulse shape,
                                                 double lo, double hi) const {
  auto evokes = [&](double amp) {
    shape.amplitude = amp;
    return stimulate(shape, 8e-3, 2e-6).evoked_spike;
  };
  require(!evokes(lo), "threshold_amplitude: lower bound already evokes");
  require(evokes(hi), "threshold_amplitude: upper bound does not evoke");
  for (int i = 0; i < 24; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (evokes(mid)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace biosense::neuro
