// Capacitive stimulation of neurons from the chip (two-way interfacing).
//
// The Fromherz line of work the paper builds on ([17, 18]) interfaces
// neurons in both directions: the same dielectric-covered electrode that
// records can *stimulate* by applying a voltage step, which couples a
// displacement current through the cleft into the attached membrane. This
// module models that path — stimulus waveform -> capacitive cleft current
// -> membrane depolarization (Hodgkin-Huxley) -> evoked action potential —
// enabling closed-loop experiments on the simulated array.
#pragma once

#include <vector>

#include "neuro/hodgkin_huxley.hpp"
#include "neuro/junction.hpp"

namespace biosense::neuro {

struct StimulusPulse {
  double amplitude = 3.0;     // V step applied to the stimulation electrode
  double rise_time = 1e-6;    // s (edge speed sets the displacement current)
  double width = 200e-6;      // s between rising and falling edge
  bool biphasic = true;       // charge-balanced (falling edge = -step)
};

struct StimulationResult {
  bool evoked_spike = false;
  double spike_latency = 0.0;          // s from pulse onset (if evoked)
  double peak_depolarization = 0.0;    // V above rest
  std::vector<double> v_m;             // membrane trace, V
};

class CapacitiveStimulator {
 public:
  /// `junction` describes the cell/electrode contact used for coupling.
  explicit CapacitiveStimulator(JunctionParams junction);

  /// Capacitive divider from electrode step to membrane step:
  /// dV_m = dV_el * C_dielectric / (C_dielectric + C_membrane), per area.
  double voltage_coupling() const;

  /// Membrane current density (A/m^2, depolarizing positive) injected into
  /// the junction membrane by an electrode voltage slew dV/dt (slow-edge
  /// picture; the fast-edge limit is the voltage step above).
  double coupling_current_density(double dv_dt) const;

  /// Applies one pulse to a fresh Hodgkin-Huxley neuron and simulates
  /// `duration` seconds at `dt`.
  StimulationResult stimulate(const StimulusPulse& pulse,
                              double duration = 10e-3, double dt = 1e-6) const;

  /// Smallest pulse amplitude that evokes a spike (bisection over
  /// amplitude, fixed shape) — the stimulation threshold of this contact.
  double threshold_amplitude(StimulusPulse shape, double lo = 0.005,
                             double hi = 10.0) const;

 private:
  JunctionParams junction_;
  double cap_per_area_;  // electrode dielectric capacitance per area
};

}  // namespace biosense::neuro
