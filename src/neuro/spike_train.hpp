// Spike train generation and raster utilities.
#pragma once

#include <vector>

#include "common/rng.hpp"

namespace biosense::neuro {

/// Homogeneous Poisson spike train with an absolute refractory period.
std::vector<double> poisson_spike_train(double rate_hz, double duration,
                                        Rng& rng,
                                        double refractory = 2e-3);

/// Regular spike train with optional timing jitter.
std::vector<double> regular_spike_train(double rate_hz, double duration,
                                        Rng& rng, double jitter_sigma = 0.0);

/// Burst train: bursts at `burst_rate_hz`, each with `spikes_per_burst`
/// spikes at `intra_burst_interval`.
std::vector<double> burst_spike_train(double burst_rate_hz,
                                      int spikes_per_burst,
                                      double intra_burst_interval,
                                      double duration, Rng& rng);

/// Mean firing rate of a spike train over `duration`.
double firing_rate(const std::vector<double>& spikes, double duration);

/// Inter-spike intervals.
std::vector<double> isi(const std::vector<double>& spikes);

/// Coefficient of variation of the ISI distribution (1 for Poisson,
/// ~0 for regular firing).
double isi_cv(const std::vector<double>& spikes);

/// Renders spike times into a sampled waveform by placing `templ` at each
/// spike (additive), sampling at `fs`. Returns `n_samples` values.
std::vector<double> render_spike_waveform(const std::vector<double>& spikes,
                                          const std::vector<double>& templ,
                                          double templ_fs, double fs,
                                          std::size_t n_samples);

/// In-place variant writing into `out` (resized to `n_samples`, capacity
/// retained) — for callers rendering many waveforms in a loop.
void render_spike_waveform_into(const std::vector<double>& spikes,
                                const std::vector<double>& templ,
                                double templ_fs, double fs,
                                std::size_t n_samples,
                                std::vector<double>& out);

}  // namespace biosense::neuro
