#include "neuro/junction.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/units.hpp"

namespace biosense::neuro {

PointContactJunction::PointContactJunction(JunctionParams params)
    : params_(params) {
  require(params.cleft_height > 0.0, "Junction: cleft height must be positive");
  require(params.electrolyte_rho > 0.0, "Junction: resistivity must be positive");
  require(params.neuron_diameter > 0.0, "Junction: diameter must be positive");
  require(params.contact_fraction > 0.0 && params.contact_fraction <= 1.0,
          "Junction: contact fraction must be in (0,1]");
  require(params.dielectric_cap_per_area > 0.0 &&
              params.transistor_input_cap > 0.0,
          "Junction: capacitances must be positive");
}

double PointContactJunction::seal_resistance() const {
  // Fromherz point-contact estimate for a circular junction: the sheet
  // resistance of the cleft r_sheet = rho / h integrated over the disk
  // gives R_seal = r_sheet / (5 pi) (the factor 5 pi from averaging the
  // distributed current injection over the disk).
  return params_.electrolyte_rho / params_.cleft_height /
         (5.0 * constants::kPi);
}

double PointContactJunction::junction_area() const {
  const double r = 0.5 * params_.neuron_diameter;
  return constants::kPi * r * r * params_.contact_fraction;
}

double PointContactJunction::coupling_gain() const {
  const double c_d = params_.dielectric_cap_per_area * junction_area();
  return c_d / (c_d + params_.transistor_input_cap);
}

double PointContactJunction::junction_current_density(
    const MembraneCurrents& c) const {
  return params_.mu_cap * c.capacitive + params_.mu_na * c.sodium +
         params_.mu_k * c.potassium + params_.mu_leak * c.leak;
}

double PointContactJunction::cleft_voltage(
    double junction_current_density_si) const {
  return seal_resistance() * junction_area() * junction_current_density_si;
}

double PointContactJunction::electrode_voltage(const MembraneCurrents& c) const {
  return cleft_voltage(junction_current_density(c)) * coupling_gain();
}

std::vector<double> PointContactJunction::spike_template(double dt,
                                                         double duration) const {
  HodgkinHuxley hh;
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(duration / dt) + 1);
  // 0.5 ms suprathreshold pulse at t = 1 ms elicits exactly one AP.
  const double stim = 0.15;  // A/m^2 = 15 uA/cm^2
  for (double t = 0.0; t < duration; t += dt) {
    const double drive = (t >= 1e-3 && t < 1.5e-3) ? stim : 0.0;
    hh.step(drive, dt);
    out.push_back(electrode_voltage(hh.currents()));
  }
  return out;
}

}  // namespace biosense::neuro
