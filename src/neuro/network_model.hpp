// Synaptically coupled spiking network (Izhikevich neurons).
//
// Section 3 of the paper is titled "Recording from nerve cells and neural
// *tissue*": unlike isolated cells, tissue and mature cultures produce
// correlated activity — population bursts, propagating waves — and that is
// what a 16k-site array is for. This module provides the generator: a
// sparse random network of Izhikevich neurons (80/20
// excitatory/inhibitory, delta-current synapses with transmission delay,
// plus thalamic background drive), following the reference network of
// Izhikevich (2003). Its spike trains can be injected into `NeuronCulture`
// so the chip records genuinely correlated tissue-like activity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "neuro/izhikevich.hpp"

namespace biosense::neuro {

struct NetworkConfig {
  int n_excitatory = 80;
  int n_inhibitory = 20;
  /// Connection probability for each directed pair (excitatory source).
  double connectivity = 0.1;
  /// Inhibitory interneurons connect densely (cortical basket cells):
  /// separate, higher connection probability.
  double connectivity_inhibitory = 0.4;
  /// Synaptic weight scales (current kicks, model units).
  double w_excitatory = 15.0;
  double w_inhibitory = -12.0;
  /// Synaptic transmission delay, s.
  double delay = 2e-3;
  /// Standard deviation of the per-step thalamic background drive.
  double noise_excitatory = 5.0;
  double noise_inhibitory = 2.0;
  double dt = 1e-3;  // integration step, s
};

class IzhikevichNetwork {
 public:
  IzhikevichNetwork(NetworkConfig config, Rng rng);

  /// Simulates `duration` seconds; spike trains are accumulated internally.
  void run(double duration);

  int size() const { return static_cast<int>(neurons_.size()); }
  bool is_excitatory(int i) const {
    return i < config_.n_excitatory;
  }

  /// Spike times (s) of neuron i since construction.
  const std::vector<double>& spikes(int i) const {
    return spike_trains_[static_cast<std::size_t>(i)];
  }
  const std::vector<std::vector<double>>& all_spikes() const {
    return spike_trains_;
  }

  /// Mean firing rate over the simulated time, Hz (all neurons).
  double mean_rate() const;

  /// Fraction of 10 ms bins in which more than `frac` of the population
  /// fired — a burstiness measure (independent Poisson: ~0 already at
  /// frac = 0.1 for cortical rates).
  double population_burst_fraction(double frac = 0.1) const;

  double simulated_time() const { return t_; }

 private:
  NetworkConfig config_;
  Rng rng_;
  std::vector<Izhikevich> neurons_;
  // weights_[pre] = list of (post, weight).
  std::vector<std::vector<std::pair<int, double>>> weights_;
  // Ring buffer of delayed synaptic inputs per neuron.
  std::vector<std::vector<double>> delay_lines_;
  std::size_t delay_slots_ = 1;
  std::size_t slot_ = 0;
  std::vector<std::vector<double>> spike_trains_;
  double t_ = 0.0;
};

}  // namespace biosense::neuro
