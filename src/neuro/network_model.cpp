#include "neuro/network_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace biosense::neuro {

IzhikevichNetwork::IzhikevichNetwork(NetworkConfig config, Rng rng)
    : config_(config), rng_(rng) {
  require(config.n_excitatory >= 0 && config.n_inhibitory >= 0 &&
              config.n_excitatory + config.n_inhibitory > 0,
          "IzhikevichNetwork: need at least one neuron");
  require(config.connectivity >= 0.0 && config.connectivity <= 1.0 &&
              config.connectivity_inhibitory >= 0.0 &&
              config.connectivity_inhibitory <= 1.0,
          "IzhikevichNetwork: connectivity must be in [0,1]");
  require(config.dt > 0.0 && config.delay >= 0.0,
          "IzhikevichNetwork: invalid timing");

  const int n = config.n_excitatory + config.n_inhibitory;
  neurons_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (i < config.n_excitatory) {
      // Heterogeneous excitatory population (RS..CH continuum), following
      // the reference implementation's r^2 parameter smear.
      const double r = rng_.uniform();
      IzhikevichParams p;
      p.c = -65.0 + 15.0 * r * r;
      p.d = 8.0 - 6.0 * r * r;
      neurons_.emplace_back(p);
    } else {
      const double r = rng_.uniform();
      IzhikevichParams p;
      p.a = 0.02 + 0.08 * r;
      p.b = 0.25 - 0.05 * r;
      p.d = 2.0;
      neurons_.emplace_back(p);
    }
  }

  weights_.assign(static_cast<std::size_t>(n), {});
  for (int pre = 0; pre < n; ++pre) {
    const bool exc = pre < config.n_excitatory;
    const double w = exc ? config.w_excitatory : config.w_inhibitory;
    const double p_conn =
        exc ? config.connectivity : config.connectivity_inhibitory;
    for (int post = 0; post < n; ++post) {
      if (post == pre) continue;
      if (rng_.bernoulli(p_conn)) {
        weights_[static_cast<std::size_t>(pre)].emplace_back(
            post, w * rng_.uniform());
      }
    }
  }

  delay_slots_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(config.delay / config.dt + 0.5) + 1);
  delay_lines_.assign(delay_slots_,
                      std::vector<double>(static_cast<std::size_t>(n), 0.0));
  spike_trains_.assign(static_cast<std::size_t>(n), {});
}

void IzhikevichNetwork::run(double duration) {
  const int n = size();
  const auto steps = static_cast<std::size_t>(duration / config_.dt);
  for (std::size_t s = 0; s < steps; ++s) {
    // Inputs due now = oldest slot of the delay ring.
    auto& due = delay_lines_[slot_];
    auto& future =
        delay_lines_[(slot_ + delay_slots_ - 1) % delay_slots_];
    for (int i = 0; i < n; ++i) {
      const double noise = is_excitatory(i)
                               ? config_.noise_excitatory * rng_.normal()
                               : config_.noise_inhibitory * rng_.normal();
      const double drive = noise + due[static_cast<std::size_t>(i)];
      if (neurons_[static_cast<std::size_t>(i)].step(drive, config_.dt)) {
        spike_trains_[static_cast<std::size_t>(i)].push_back(t_);
        for (const auto& [post, w] : weights_[static_cast<std::size_t>(i)]) {
          future[static_cast<std::size_t>(post)] += w;
        }
      }
      due[static_cast<std::size_t>(i)] = 0.0;  // consumed
    }
    slot_ = (slot_ + 1) % delay_slots_;
    t_ += config_.dt;
  }
}

double IzhikevichNetwork::mean_rate() const {
  if (t_ <= 0.0) return 0.0;
  std::size_t total = 0;
  for (const auto& tr : spike_trains_) total += tr.size();
  return static_cast<double>(total) /
         (static_cast<double>(size()) * t_);
}

double IzhikevichNetwork::population_burst_fraction(double frac) const {
  if (t_ <= 0.0) return 0.0;
  const double bin = 10e-3;
  const auto n_bins = static_cast<std::size_t>(t_ / bin) + 1;
  std::vector<int> active(n_bins, 0);
  for (const auto& tr : spike_trains_) {
    std::size_t last_bin = n_bins;  // count each neuron once per bin
    for (double ts : tr) {
      const auto b = static_cast<std::size_t>(ts / bin);
      if (b != last_bin && b < n_bins) {
        ++active[b];
        last_bin = b;
      }
    }
  }
  const int threshold = static_cast<int>(frac * size());
  std::size_t bursts = 0;
  for (int a : active) {
    if (a >= threshold) ++bursts;
  }
  return static_cast<double>(bursts) / static_cast<double>(n_bins);
}

}  // namespace biosense::neuro
