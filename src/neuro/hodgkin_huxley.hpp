// Hodgkin-Huxley membrane model.
//
// The neural recording chip (Section 3) measures extracellular signatures
// of action potentials: "temporal peaks of the intracellular voltage, which
// are associated with ion currents through the cell membrane". To simulate
// what the chip sees we need those ion currents, not just spike times —
// so the electrogenic substrate is the classic Hodgkin-Huxley model
// (squid-axon parameters, the standard reference kinetics), integrated
// with exponential-Euler gating for stability.
//
// Internal units follow the HH convention (mV, ms, mS/cm^2, uA/cm^2);
// accessors convert to SI.
#pragma once

#include <vector>

namespace biosense::neuro {

struct HhParams {
  double c_m = 1.0;       // membrane capacitance, uF/cm^2
  double g_na = 120.0;    // peak Na conductance, mS/cm^2
  double g_k = 36.0;      // peak K conductance, mS/cm^2
  double g_l = 0.3;       // leak conductance, mS/cm^2
  double e_na = 50.0;     // Na reversal, mV
  double e_k = -77.0;     // K reversal, mV
  double e_l = -54.387;   // leak reversal, mV
  double v_rest = -65.0;  // initial membrane voltage, mV
};

/// Per-step breakdown of membrane current densities (A/m^2, SI) — what the
/// junction model consumes.
struct MembraneCurrents {
  double capacitive = 0.0;  // c_m dV/dt
  double sodium = 0.0;
  double potassium = 0.0;
  double leak = 0.0;
  double total() const { return capacitive + sodium + potassium + leak; }
};

class HodgkinHuxley {
 public:
  explicit HodgkinHuxley(HhParams params = {});

  /// Advances the model by dt seconds with external stimulus current
  /// density `i_stim` (A/m^2, positive = depolarizing).
  void step(double i_stim_si, double dt_s);

  /// Membrane potential, volts.
  double v_m() const { return v_ * 1e-3; }

  /// Ionic + capacitive current densities of the last step, A/m^2.
  const MembraneCurrents& currents() const { return currents_; }

  /// True while the membrane is above the spike detection level (0 mV).
  bool spiking() const { return v_ > 0.0; }

  double gate_m() const { return m_; }
  double gate_h() const { return h_; }
  double gate_n() const { return n_; }

  /// Instantaneously shifts the membrane potential by `dv` volts (models a
  /// capacitively coupled fast charge injection, e.g. chip stimulation).
  void add_voltage(double dv) { v_ += dv * 1e3; }

  /// Resets to resting state.
  void reset();

  /// Convenience: simulates `duration` at `dt` with a current pulse of
  /// density `i_stim` applied during [t_on, t_off); returns the membrane
  /// voltage trace (V) sampled every step.
  std::vector<double> run_pulse(double i_stim_si, double t_on, double t_off,
                                double duration, double dt);

 private:
  HhParams params_;
  double v_;  // mV
  double m_, h_, n_;
  MembraneCurrents currents_;
};

}  // namespace biosense::neuro
