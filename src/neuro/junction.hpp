// Point-contact model of the cell/chip junction (Fig. 5).
//
// An adherent neuron leaves a ~60 nm electrolytic cleft between its lower
// membrane and the chip surface. Ion currents through the junction membrane
// must flow out sideways through the thin cleft, whose spreading resistance
// (the "seal" resistance R_seal) converts them into a cleft potential:
//
//     V_J(t) = R_seal * A_JM * J_M(t)
//
// with A_JM the junction membrane area and J_M the membrane current density
// (capacitive + ionic) delivered by the Hodgkin-Huxley model. The cleft
// potential is probed capacitively: the sensor electrode under the thin
// dielectric forms a divider with the transistor input capacitance,
//
//     V_electrode = V_J * C_dielectric / (C_dielectric + C_input).
//
// With physiological parameters this lands in the paper's quoted range of
// 100 uV ... 5 mV — verified by bench_fig5_cleft.
#pragma once

#include <vector>

#include "neuro/hodgkin_huxley.hpp"

namespace biosense::neuro {

struct JunctionParams {
  double cleft_height = 60e-9;      // m (sets R_seal via spreading formula)
  double electrolyte_rho = 0.7;     // Ohm m (physiological saline)
  double neuron_diameter = 20e-6;   // m
  /// Fraction of the cell's projected area in tight junction contact.
  double contact_fraction = 0.4;
  double dielectric_cap_per_area = 5e-3;  // F/m^2 (10 nm high-k stack)
  double transistor_input_cap = 10e-15;   // F

  /// Channel-density scaling of the junction membrane relative to the free
  /// membrane. For a uniform cell the net membrane current is zero between
  /// stimuli (capacitive and ionic currents cancel by charge balance), so
  /// the recorded signal is produced by this asymmetry: a Na-enriched
  /// junction (mu_na > 1) yields the classic biphasic "Na-type" transient.
  double mu_na = 2.0;
  double mu_k = 1.0;
  double mu_leak = 1.0;
  double mu_cap = 1.0;
};

class PointContactJunction {
 public:
  explicit PointContactJunction(JunctionParams params);

  /// Seal resistance from the disk spreading formula
  /// R_seal = rho / (5 pi h) * ... reduced to rho/(5 pi h) * 1 for a disk of
  /// radius a: R = rho a^2 / (something) — we use the standard estimate
  /// R_seal = rho / (5 pi h) (Fromherz), independent of radius to first
  /// order.
  double seal_resistance() const;

  double junction_area() const;

  /// Capacitive divider gain from cleft potential to electrode.
  double coupling_gain() const;

  /// Junction-membrane current density (A/m^2) for a given free-membrane
  /// current breakdown, applying the channel-density scalings.
  double junction_current_density(const MembraneCurrents& c) const;

  /// Cleft potential for a given junction current density (A/m^2).
  double cleft_voltage(double junction_current_density_si) const;

  /// Electrode potential for a given free-membrane current breakdown.
  double electrode_voltage(const MembraneCurrents& c) const;

  /// Synthesizes the extracellular spike template seen by the electrode for
  /// one action potential: runs HH with a brief suprathreshold pulse and
  /// maps the junction membrane currents through the model. Returns the
  /// electrode voltage sampled at `dt` for `duration`.
  std::vector<double> spike_template(double dt = 10e-6,
                                     double duration = 8e-3) const;

  const JunctionParams& params() const { return params_; }

 private:
  JunctionParams params_;
};

}  // namespace biosense::neuro
