#include "neuro/izhikevich.hpp"

#include "common/error.hpp"

namespace biosense::neuro {

Izhikevich::Izhikevich(IzhikevichParams params) : params_(params) { reset(); }

void Izhikevich::reset() {
  v_ = -65.0;
  u_ = params_.b * v_;
}

bool Izhikevich::step(double i, double dt_s) {
  require(dt_s > 0.0, "Izhikevich: dt must be positive");
  const double dt = dt_s * 1e3;  // model runs in ms
  // Two half-steps of the voltage equation improve stability (as in the
  // reference implementation).
  for (int k = 0; k < 2; ++k) {
    v_ += 0.5 * dt * (0.04 * v_ * v_ + 5.0 * v_ + 140.0 - u_ + i);
  }
  u_ += dt * params_.a * (params_.b * v_ - u_);
  if (v_ >= 30.0) {
    v_ = params_.c;
    u_ += params_.d;
    return true;
  }
  return false;
}

std::vector<double> Izhikevich::run(double i, double duration, double dt) {
  reset();
  std::vector<double> spikes;
  for (double t = 0.0; t < duration; t += dt) {
    if (step(i, dt)) spikes.push_back(t);
  }
  return spikes;
}

}  // namespace biosense::neuro
