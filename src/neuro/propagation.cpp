#include "neuro/propagation.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace biosense::neuro {

void apply_wave_activity(NeuronCulture& culture, const WaveConfig& config,
                         Rng& rng) {
  require(config.velocity > 0.0 && config.wave_rate > 0.0,
          "apply_wave_activity: invalid wave parameters");
  require(config.duration > 0.0 && config.spikes_per_wave >= 1,
          "apply_wave_activity: invalid activity window");

  // Wave launch times: jittered-regular.
  std::vector<double> launches;
  const double period = 1.0 / config.wave_rate;
  for (double t = 0.1 * period; t < config.duration; t += period) {
    launches.push_back(t);
  }

  std::vector<std::vector<double>> trains;
  trains.reserve(culture.neurons().size());
  for (const auto& n : culture.neurons()) {
    const double dist =
        std::hypot(n.x - config.origin_x, n.y - config.origin_y);
    std::vector<double> spikes;
    for (double t0 : launches) {
      const double arrival =
          t0 + dist / config.velocity + rng.normal(0.0, config.jitter);
      for (int k = 0; k < config.spikes_per_wave; ++k) {
        const double ts = arrival + k * config.burst_interval;
        if (ts >= 0.0 && ts < config.duration) spikes.push_back(ts);
      }
    }
    std::sort(spikes.begin(), spikes.end());
    trains.push_back(std::move(spikes));
  }

  // assign_spike_trains maps trains to neurons cyclically; sizes match, so
  // the mapping is one-to-one and keeps each neuron's own geometry-derived
  // train.
  culture.assign_spike_trains(trains);
}

}  // namespace biosense::neuro
