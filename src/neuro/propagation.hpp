// Propagating activity waves across the culture.
//
// Developing cultures and tissue slices produce waves that sweep across
// millimetres at 10-100 mm/s — resolvable only with a dense array like the
// paper's (7.8 um pitch, 2 kframes/s gives ~16 um per frame at 30 mm/s).
// This module stamps wave-locked spike trains onto a culture's neurons and
// provides the analysis to recover the wave velocity from recorded spike
// times, closing the loop array -> analysis -> physics.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "neuro/culture.hpp"

namespace biosense::neuro {

struct WaveConfig {
  double origin_x = 0.0;      // m
  double origin_y = 0.0;      // m
  double velocity = 30e-3;    // m/s (typical culture wave)
  double wave_rate = 2.0;     // waves per second
  double jitter = 1e-3;       // per-neuron arrival jitter, s
  int spikes_per_wave = 3;    // short burst at wavefront passage
  double burst_interval = 5e-3;  // s between burst spikes
  double duration = 2.0;      // s of activity
};

/// Replaces each culture neuron's spike train with wave-locked bursts:
/// neuron at distance d from the origin fires at t_wave + d / velocity.
void apply_wave_activity(NeuronCulture& culture, const WaveConfig& config,
                         Rng& rng);

}  // namespace biosense::neuro
