#include "neuro/hodgkin_huxley.hpp"

#include <cmath>

#include "common/error.hpp"

namespace biosense::neuro {

namespace {

// HH rate constants (1/ms) as functions of membrane voltage in mV.
double alpha_m(double v) {
  const double x = v + 40.0;
  if (std::abs(x) < 1e-7) return 1.0;  // limit of the removable singularity
  return 0.1 * x / (1.0 - std::exp(-x / 10.0));
}
double beta_m(double v) { return 4.0 * std::exp(-(v + 65.0) / 18.0); }

double alpha_h(double v) { return 0.07 * std::exp(-(v + 65.0) / 20.0); }
double beta_h(double v) { return 1.0 / (1.0 + std::exp(-(v + 35.0) / 10.0)); }

double alpha_n(double v) {
  const double x = v + 55.0;
  if (std::abs(x) < 1e-7) return 0.1;
  return 0.01 * x / (1.0 - std::exp(-x / 10.0));
}
double beta_n(double v) { return 0.125 * std::exp(-(v + 65.0) / 80.0); }

// Exponential-Euler update of a gate with rates a, b (1/ms) over dt (ms).
double gate_step(double x, double a, double b, double dt) {
  const double tau = 1.0 / (a + b);
  const double x_inf = a * tau;
  return x_inf + (x - x_inf) * std::exp(-dt / tau);
}

double gate_inf(double a, double b) { return a / (a + b); }

// Unit conversions: model units <-> SI.
// current density: 1 uA/cm^2 = 1e-2 A/m^2
constexpr double kUaCm2PerAm2 = 100.0;  // A/m^2 -> uA/cm^2 multiply by 100

}  // namespace

HodgkinHuxley::HodgkinHuxley(HhParams params) : params_(params) {
  require(params.c_m > 0.0, "HodgkinHuxley: c_m must be positive");
  reset();
}

void HodgkinHuxley::reset() {
  v_ = params_.v_rest;
  m_ = gate_inf(alpha_m(v_), beta_m(v_));
  h_ = gate_inf(alpha_h(v_), beta_h(v_));
  n_ = gate_inf(alpha_n(v_), beta_n(v_));
  currents_ = {};
}

void HodgkinHuxley::step(double i_stim_si, double dt_s) {
  require(dt_s > 0.0, "HodgkinHuxley: dt must be positive");
  const double dt = dt_s * 1e3;                       // ms
  const double i_stim = i_stim_si * kUaCm2PerAm2;     // uA/cm^2

  // Gates first (exponential Euler), then the voltage (forward Euler on the
  // current balance) — the standard splitting, stable at dt <= 25 us.
  m_ = gate_step(m_, alpha_m(v_), beta_m(v_), dt);
  h_ = gate_step(h_, alpha_h(v_), beta_h(v_), dt);
  n_ = gate_step(n_, alpha_n(v_), beta_n(v_), dt);

  const double i_na = params_.g_na * m_ * m_ * m_ * h_ * (v_ - params_.e_na);
  const double i_k = params_.g_k * n_ * n_ * n_ * n_ * (v_ - params_.e_k);
  const double i_l = params_.g_l * (v_ - params_.e_l);

  const double dv_dt = (i_stim - i_na - i_k - i_l) / params_.c_m;  // mV/ms
  v_ += dv_dt * dt;

  // Convert current densities to SI (uA/cm^2 -> A/m^2: divide by 100).
  currents_.sodium = i_na / kUaCm2PerAm2;
  currents_.potassium = i_k / kUaCm2PerAm2;
  currents_.leak = i_l / kUaCm2PerAm2;
  // Capacitive density: c_m dV/dt, with c_m in uF/cm^2 = 1e-2 F/m^2 and
  // dV/dt in mV/ms = V/s.
  currents_.capacitive = params_.c_m * 1e-2 * dv_dt;
}

std::vector<double> HodgkinHuxley::run_pulse(double i_stim_si, double t_on,
                                             double t_off, double duration,
                                             double dt) {
  reset();
  std::vector<double> trace;
  trace.reserve(static_cast<std::size_t>(duration / dt) + 1);
  for (double t = 0.0; t < duration; t += dt) {
    const double stim = (t >= t_on && t < t_off) ? i_stim_si : 0.0;
    step(stim, dt);
    trace.push_back(v_m());
  }
  return trace;
}

}  // namespace biosense::neuro
