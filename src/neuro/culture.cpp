#include "neuro/culture.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "neuro/spike_train.hpp"

namespace biosense::neuro {

NeuronCulture::NeuronCulture(CultureConfig config, Rng rng)
    : config_(config) {
  require(config.n_neurons >= 0, "NeuronCulture: n_neurons must be >= 0");
  require(config.area_size > 0.0, "NeuronCulture: area must be positive");
  require(config.diameter_max >= config.diameter_min &&
              config.diameter_min > 0.0,
          "NeuronCulture: invalid diameter range");

  neurons_.reserve(static_cast<std::size_t>(config.n_neurons));
  for (int i = 0; i < config.n_neurons; ++i) {
    PlacedNeuron n;
    n.x = rng.uniform(0.0, config.area_size);
    n.y = rng.uniform(0.0, config.area_size);
    n.diameter = rng.log_uniform(config.diameter_min, config.diameter_max);
    const int pat = static_cast<int>(rng.uniform_int(0, 2));
    n.pattern = static_cast<FiringPattern>(pat);

    const double rate =
        std::max(0.5, rng.normal(config.mean_rate_hz, config.mean_rate_hz / 3.0));
    switch (n.pattern) {
      case FiringPattern::kRegular:
        n.spike_times =
            regular_spike_train(rate, config.duration, rng, 2e-3);
        break;
      case FiringPattern::kPoisson:
        n.spike_times = poisson_spike_train(rate, config.duration, rng);
        break;
      case FiringPattern::kBursting:
        n.spike_times = burst_spike_train(rate / 4.0, 4, 8e-3,
                                          config.duration, rng);
        break;
    }

    JunctionParams jp = config.junction;
    jp.neuron_diameter = n.diameter;
    // Large cells attach less conformally: their effective tight-contact
    // fraction shrinks roughly inversely with diameter, which keeps the
    // amplitude distribution inside the physiological window the paper
    // quotes (100 uV .. 5 mV) instead of growing with d^2.
    jp.contact_fraction *= std::min(1.0, 30e-6 / n.diameter);
    // Biological spread: seal quality varies cell to cell.
    jp.contact_fraction =
        std::clamp(jp.contact_fraction * rng.log_uniform(0.5, 2.0), 0.05, 1.0);
    jp.mu_na = std::max(1.0, jp.mu_na * rng.uniform(0.7, 1.3));
    PointContactJunction junction(jp);
    n.templ = junction.spike_template(1.0 / config.template_fs);
    for (double v : n.templ) {
      n.peak_amplitude = std::max(n.peak_amplitude, std::abs(v));
    }
    // Seal saturation: cleft potentials cannot exceed a few mV before the
    // seal leaks (and the paper quotes 5 mV as the observed maximum).
    constexpr double kAmplitudeCeiling = 5e-3;
    if (n.peak_amplitude > kAmplitudeCeiling) {
      const double scale = kAmplitudeCeiling / n.peak_amplitude;
      for (double& v : n.templ) v *= scale;
      n.peak_amplitude = kAmplitudeCeiling;
    }
    neurons_.push_back(std::move(n));
  }
}

double NeuronCulture::footprint_weight(const PlacedNeuron& n, double x,
                                       double y) const {
  const double r = std::hypot(x - n.x, y - n.y);
  const double contact_r = 0.5 * n.diameter;
  if (r <= contact_r) return 1.0;
  // The cleft potential decays within roughly one cleft length constant
  // (~ a few micrometers) outside the contact area.
  const double rolloff = 3e-6;
  const double d = r - contact_r;
  return std::exp(-d / rolloff);
}

std::vector<const PlacedNeuron*> NeuronCulture::neurons_at(double x,
                                                           double y) const {
  std::vector<const PlacedNeuron*> out;
  for (const auto& n : neurons_) {
    if (footprint_weight(n, x, y) > 0.01) out.push_back(&n);
  }
  return out;
}

std::vector<double> NeuronCulture::waveform_at(double x, double y, double fs,
                                               std::size_t n_samples) const {
  std::vector<double> wave(n_samples, 0.0);
  for (const auto& n : neurons_) {
    const double w = footprint_weight(n, x, y);
    if (w <= 0.01) continue;
    const auto contrib = render_spike_waveform(
        n.spike_times, n.templ, config_.template_fs, fs, n_samples);
    for (std::size_t i = 0; i < n_samples; ++i) wave[i] += w * contrib[i];
  }
  return wave;
}

void NeuronCulture::assign_spike_trains(
    const std::vector<std::vector<double>>& trains) {
  require(!trains.empty(), "NeuronCulture: need at least one spike train");
  for (std::size_t i = 0; i < neurons_.size(); ++i) {
    neurons_[i].spike_times = trains[i % trains.size()];
  }
}

double NeuronCulture::max_amplitude() const {
  double m = 0.0;
  for (const auto& n : neurons_) m = std::max(m, n.peak_amplitude);
  return m;
}

}  // namespace biosense::neuro
