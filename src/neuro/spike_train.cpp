#include "neuro/spike_train.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace biosense::neuro {

std::vector<double> poisson_spike_train(double rate_hz, double duration,
                                        Rng& rng, double refractory) {
  require(rate_hz >= 0.0 && duration >= 0.0,
          "poisson_spike_train: invalid arguments");
  std::vector<double> spikes;
  if (rate_hz <= 0.0) return spikes;
  double t = 0.0;
  while (true) {
    t += rng.exponential(rate_hz) + refractory;
    if (t >= duration) break;
    spikes.push_back(t);
  }
  return spikes;
}

std::vector<double> regular_spike_train(double rate_hz, double duration,
                                        Rng& rng, double jitter_sigma) {
  require(rate_hz > 0.0, "regular_spike_train: rate must be positive");
  std::vector<double> spikes;
  const double period = 1.0 / rate_hz;
  for (double t = period; t < duration; t += period) {
    const double jt = t + rng.normal(0.0, jitter_sigma);
    if (jt >= 0.0 && jt < duration) spikes.push_back(jt);
  }
  std::sort(spikes.begin(), spikes.end());
  return spikes;
}

std::vector<double> burst_spike_train(double burst_rate_hz,
                                      int spikes_per_burst,
                                      double intra_burst_interval,
                                      double duration, Rng& rng) {
  require(burst_rate_hz > 0.0 && spikes_per_burst >= 1,
          "burst_spike_train: invalid arguments");
  std::vector<double> spikes;
  double t = rng.exponential(burst_rate_hz);
  while (t < duration) {
    for (int k = 0; k < spikes_per_burst; ++k) {
      const double ts = t + k * intra_burst_interval;
      if (ts < duration) spikes.push_back(ts);
    }
    t += rng.exponential(burst_rate_hz);
  }
  std::sort(spikes.begin(), spikes.end());
  return spikes;
}

double firing_rate(const std::vector<double>& spikes, double duration) {
  if (duration <= 0.0) return 0.0;
  return static_cast<double>(spikes.size()) / duration;
}

std::vector<double> isi(const std::vector<double>& spikes) {
  std::vector<double> out;
  if (spikes.size() < 2) return out;
  out.reserve(spikes.size() - 1);
  for (std::size_t i = 1; i < spikes.size(); ++i) {
    out.push_back(spikes[i] - spikes[i - 1]);
  }
  return out;
}

double isi_cv(const std::vector<double>& spikes) {
  const auto intervals = isi(spikes);
  if (intervals.size() < 2) return 0.0;
  const double m = mean(intervals);
  return m > 0.0 ? stddev(intervals) / m : 0.0;
}

std::vector<double> render_spike_waveform(const std::vector<double>& spikes,
                                          const std::vector<double>& templ,
                                          double templ_fs, double fs,
                                          std::size_t n_samples) {
  std::vector<double> out;
  render_spike_waveform_into(spikes, templ, templ_fs, fs, n_samples, out);
  return out;
}

void render_spike_waveform_into(const std::vector<double>& spikes,
                                const std::vector<double>& templ,
                                double templ_fs, double fs,
                                std::size_t n_samples,
                                std::vector<double>& out) {
  require(templ_fs > 0.0 && fs > 0.0, "render_spike_waveform: invalid rates");
  out.assign(n_samples, 0.0);
  if (templ.empty()) return;
  const double templ_duration = static_cast<double>(templ.size()) / templ_fs;
  for (double ts : spikes) {
    const auto first = static_cast<std::size_t>(
        std::max(0.0, std::ceil(ts * fs)));
    for (std::size_t i = first; i < n_samples; ++i) {
      const double rel = static_cast<double>(i) / fs - ts;
      if (rel >= templ_duration) break;
      // Linear interpolation into the template.
      const double idx = rel * templ_fs;
      const auto lo = static_cast<std::size_t>(idx);
      const auto hi = std::min(lo + 1, templ.size() - 1);
      const double frac = idx - static_cast<double>(lo);
      out[i] += templ[lo] * (1.0 - frac) + templ[hi] * frac;
    }
  }
}

}  // namespace biosense::neuro
