// Simulated neural culture on the sensor surface.
//
// Replaces the paper's wet experiment (neurons or brain slices adhering to
// the 1 mm x 1 mm sensor field) with a synthetic culture: neurons with
// diameters in the paper's quoted 10..100 um range are placed over the
// array, each with its own junction geometry, spike statistics and
// extracellular spike template (synthesized from the Hodgkin-Huxley +
// point-contact models). The culture can then be sampled at any (x, y) to
// produce the electrode-referred voltage waveform a pixel at that location
// records — the input to the neurochip simulation.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "neuro/junction.hpp"

namespace biosense::neuro {

enum class FiringPattern { kRegular, kPoisson, kBursting };

struct CultureConfig {
  double area_size = 1e-3;        // m, square side (paper: 1 mm x 1 mm)
  int n_neurons = 30;
  double diameter_min = 10e-6;    // m
  double diameter_max = 100e-6;   // m
  double mean_rate_hz = 8.0;      // typical culture firing rate
  double duration = 1.0;          // s of activity to pre-generate
  JunctionParams junction{};      // base junction parameters
  double template_fs = 100e3;     // template sampling rate, Hz
};

struct PlacedNeuron {
  double x = 0.0;                 // m
  double y = 0.0;                 // m
  double diameter = 20e-6;        // m
  FiringPattern pattern = FiringPattern::kPoisson;
  std::vector<double> spike_times;
  std::vector<double> templ;      // electrode-voltage spike template, V
  double peak_amplitude = 0.0;    // max |templ|, V
};

class NeuronCulture {
 public:
  NeuronCulture(CultureConfig config, Rng rng);

  const std::vector<PlacedNeuron>& neurons() const { return neurons_; }
  const CultureConfig& config() const { return config_; }

  /// Spatial weight of a neuron's junction signal at a point: 1 inside the
  /// contact disk, smooth roll-off over one cleft-coupling length outside.
  double footprint_weight(const PlacedNeuron& n, double x, double y) const;

  /// Electrode-referred voltage waveform at position (x, y), sampled at
  /// `fs` for `n_samples` starting at t = 0. Sums all overlapping neurons.
  std::vector<double> waveform_at(double x, double y, double fs,
                                  std::size_t n_samples) const;

  /// Largest spike amplitude any point on the array can see (for checking
  /// the paper's 100 uV .. 5 mV range).
  double max_amplitude() const;

  /// Neurons whose footprint covers the point.
  std::vector<const PlacedNeuron*> neurons_at(double x, double y) const;

  /// Replaces the culture's intrinsic spike trains with externally
  /// generated ones (e.g. from an IzhikevichNetwork, for tissue-like
  /// correlated activity). Trains are assigned to neurons cyclically.
  void assign_spike_trains(const std::vector<std::vector<double>>& trains);

 private:
  CultureConfig config_;
  std::vector<PlacedNeuron> neurons_;
};

}  // namespace biosense::neuro
