// Izhikevich spiking neuron model.
//
// For the 128x128-pixel culture simulations the full Hodgkin-Huxley model
// per neuron is unnecessarily expensive; the Izhikevich model reproduces
// the spike *timing* statistics of cortical cell types at a fraction of
// the cost. Spike waveforms as seen by the chip are then synthesized from
// a junction template (see junction.hpp) triggered at these spike times.
//
//   dv/dt = 0.04 v^2 + 5 v + 140 - u + I
//   du/dt = a (b v - u);  v >= 30 mV  =>  v <- c, u <- u + d
#pragma once

#include <vector>

namespace biosense::neuro {

struct IzhikevichParams {
  double a = 0.02;
  double b = 0.2;
  double c = -65.0;
  double d = 8.0;

  /// Common presets (Izhikevich 2003, Fig. 2).
  static IzhikevichParams regular_spiking() { return {0.02, 0.2, -65.0, 8.0}; }
  static IzhikevichParams fast_spiking() { return {0.1, 0.2, -65.0, 2.0}; }
  static IzhikevichParams chattering() { return {0.02, 0.2, -50.0, 2.0}; }
  static IzhikevichParams intrinsically_bursting() {
    return {0.02, 0.2, -55.0, 4.0};
  }
};

class Izhikevich {
 public:
  explicit Izhikevich(IzhikevichParams params = {});

  /// Advances by dt seconds with input current `i` (model units, ~10 for
  /// sustained firing). Returns true if the neuron fired this step.
  bool step(double i, double dt_s);

  double v_mv() const { return v_; }
  void reset();

  /// Simulates `duration` seconds at `dt` with constant drive `i`; returns
  /// spike times (s).
  std::vector<double> run(double i, double duration, double dt);

 private:
  IzhikevichParams params_;
  double v_;
  double u_;
};

}  // namespace biosense::neuro
