// Little-endian state cursors for snapshot section payloads (DESIGN.md §13).
//
// `StateWriter` appends primitive fields to a byte buffer; `StateReader`
// parses them back with the same bounds-checked ok()-flag idiom as the
// host protocol's PayloadReader: reads past the end (or reads of malformed
// values) latch the failure flag and return zeros, so `save_state` /
// `load_state` hooks are written as straight-line field lists and callers
// check `ok() && exhausted()` exactly once per section. This is what makes
// multi-bit corruption that slips past a section CRC collapse into a typed
// error instead of UB: every length is validated against the remaining
// bytes and against a caller-supplied cap before any container grows.
//
// Header-only on purpose — leaf libraries (noise, circuit, i2f, chips)
// implement their hooks against these cursors without linking the snapshot
// container library.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace biosense::snapshot {

/// Little-endian field appender for one section payload.
class StateWriter {
 public:
  explicit StateWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { put(v, 1); }
  void u16(std::uint16_t v) { put(v, 2); }
  void u32(std::uint32_t v) { put(v, 4); }
  void u64(std::uint64_t v) { put(v, 8); }
  void i32(std::int32_t v) { put(static_cast<std::uint32_t>(v), 4); }
  void i64(std::int64_t v) { put(static_cast<std::uint64_t>(v), 8); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }

  /// Full Rng state: 4 engine words + the Box-Muller cache.
  void rng(const Rng& r) {
    const RngState st = r.state();
    for (std::uint64_t word : st.s) u64(word);
    f64(st.cached_normal);
    b(st.has_cached_normal);
  }

  /// Length-prefixed double vector.
  void vec_f64(const std::vector<double>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (double x : v) f64(x);
  }

  /// Length-prefixed u64 vector.
  void vec_u64(const std::vector<std::uint64_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    for (std::uint64_t x : v) u64(x);
  }

  /// Length-prefixed raw byte blob.
  void bytes(const std::vector<std::uint8_t>& v) {
    u32(static_cast<std::uint32_t>(v.size()));
    out_->insert(out_->end(), v.begin(), v.end());
  }

  /// Length-prefixed byte string (u16 length — state strings are names
  /// and labels, never bulk data).
  void str(const std::string& s) {
    u16(static_cast<std::uint16_t>(s.size()));
    for (char c : s) out_->push_back(static_cast<std::uint8_t>(c));
  }

  std::size_t size() const { return out_->size(); }

 private:
  void put(std::uint64_t v, std::size_t width) {
    for (std::size_t i = 0; i < width; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t>* out_;
};

/// Bounds-checked little-endian field parser for one section payload.
class StateReader {
 public:
  StateReader(const std::uint8_t* bytes, std::size_t n)
      : bytes_(bytes), n_(n) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(take(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  std::uint64_t u64() { return take(8); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  /// Strict bool: any encoding other than 0/1 marks the payload bad.
  bool b() {
    const std::uint8_t v = u8();
    if (v > 1) ok_ = false;
    return v == 1;
  }

  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  void rng(Rng& r) {
    RngState st;
    for (std::uint64_t& word : st.s) word = u64();
    st.cached_normal = f64();
    st.has_cached_normal = b();
    if (ok_) r.restore(st);
  }

  /// Reads a double vector written by `vec_f64`. The element count must be
  /// exactly `expected` when `expected` is non-negative (fixed-shape state,
  /// e.g. one entry per site); otherwise it is only bounds-checked against
  /// the remaining payload. Never grows `out` beyond what the payload can
  /// actually back.
  void vec_f64(std::vector<double>& out, std::int64_t expected = -1) {
    const std::uint32_t count = u32();
    if (!ok_ || (expected >= 0 && count != static_cast<std::uint64_t>(expected)) ||
        static_cast<std::size_t>(count) * 8 > remaining()) {
      ok_ = false;
      return;
    }
    out.assign(count, 0.0);
    for (double& x : out) x = f64();
  }

  void vec_u64(std::vector<std::uint64_t>& out, std::int64_t expected = -1) {
    const std::uint32_t count = u32();
    if (!ok_ || (expected >= 0 && count != static_cast<std::uint64_t>(expected)) ||
        static_cast<std::size_t>(count) * 8 > remaining()) {
      ok_ = false;
      return;
    }
    out.assign(count, 0);
    for (std::uint64_t& x : out) x = u64();
  }

  /// Reads a blob written by `bytes`, bounded by `max` and the remaining
  /// payload — a corrupt length can never grow `out` past either.
  void bytes(std::vector<std::uint8_t>& out, std::size_t max) {
    const std::uint32_t count = u32();
    if (!ok_ || count > max || count > remaining()) {
      ok_ = false;
      return;
    }
    out.assign(bytes_ + pos_, bytes_ + pos_ + count);
    pos_ += count;
  }

  /// Reads a string written by `str`, bounded by `max` and the remaining
  /// payload — a corrupt length can never grow `out` past either.
  void str(std::string& out, std::size_t max) {
    const std::uint16_t count = u16();
    if (!ok_ || count > max || count > remaining()) {
      ok_ = false;
      return;
    }
    out.assign(reinterpret_cast<const char*>(bytes_) + pos_, count);
    pos_ += count;
  }

  bool ok() const { return ok_; }
  /// True when every byte has been consumed — section schemas are
  /// exact-length, trailing garbage is corruption.
  bool exhausted() const { return ok_ && pos_ == n_; }
  std::size_t remaining() const { return n_ - pos_; }

  /// Latches the failure flag from a hook that detected a semantic
  /// mismatch (wrong element count, wrong capacity, ...).
  void fail() { ok_ = false; }

 private:
  std::uint64_t take(std::size_t width) {
    if (!ok_ || n_ - pos_ < width) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < width; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_ + i]) << (8 * i);
    }
    pos_ += width;
    return v;
  }

  const std::uint8_t* bytes_;
  std::size_t n_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace biosense::snapshot
