#include "snapshot/atomic_file.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

namespace biosense::snapshot {

Result<void, SnapshotError> write_file_atomic(const std::string& path,
                                              const std::uint8_t* data,
                                              std::size_t n) {
  using R = Result<void, SnapshotError>;
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return R::err(SnapshotError::kIoError);
  const std::size_t written = n == 0 ? 0 : std::fwrite(data, 1, n, f);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (written != n || !flushed || !closed) {
    std::remove(tmp.c_str());
    return R::err(SnapshotError::kIoError);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return R::err(SnapshotError::kIoError);
  }
  return R::ok();
}

Result<std::vector<std::uint8_t>, SnapshotError> read_file(
    const std::string& path) {
  using R = Result<std::vector<std::uint8_t>, SnapshotError>;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return R::err(SnapshotError::kIoError);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return R::err(SnapshotError::kIoError);
  return R::ok(std::move(bytes));
}

CheckpointStore::CheckpointStore(std::string dir, std::string name)
    : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // surfaced on save
  path_ = dir_ + "/" + name + ".ckpt";
  prev_path_ = path_ + ".prev";
}

Result<void, SnapshotError> CheckpointStore::save(
    const std::vector<std::uint8_t>& bytes) {
  // Demote the current good checkpoint before overwriting it: if the
  // process dies inside write_file_atomic, load() still finds .prev. A
  // failed rename (no current checkpoint yet) is fine.
  std::rename(path_.c_str(), prev_path_.c_str());
  return write_file_atomic(path_, bytes);
}

Result<std::vector<std::uint8_t>, SnapshotError> CheckpointStore::load()
    const {
  using R = Result<std::vector<std::uint8_t>, SnapshotError>;
  SnapshotError current_error = SnapshotError::kIoError;
  for (const std::string* candidate : {&path_, &prev_path_}) {
    auto bytes = read_file(*candidate);
    if (!bytes.has_value()) {
      if (candidate == &path_) current_error = bytes.error();
      continue;
    }
    auto view = SnapshotView::parse(bytes.value());
    if (view.has_value()) return R::ok(std::move(bytes.value()));
    if (candidate == &path_) current_error = view.error();
  }
  return R::err(current_error);
}

}  // namespace biosense::snapshot
