#include "snapshot/format.hpp"

#include <cstring>

#include "common/crc.hpp"
#include "common/error.hpp"

namespace biosense::snapshot {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

const char* snapshot_error_name(SnapshotError err) {
  switch (err) {
    case SnapshotError::kTruncated: return "truncated";
    case SnapshotError::kBadMagic: return "bad_magic";
    case SnapshotError::kBadVersion: return "bad_version";
    case SnapshotError::kBadHeaderCrc: return "bad_header_crc";
    case SnapshotError::kBadSectionHeader: return "bad_section_header";
    case SnapshotError::kBadSectionCrc: return "bad_section_crc";
    case SnapshotError::kDuplicateSection: return "duplicate_section";
    case SnapshotError::kMissingSection: return "missing_section";
    case SnapshotError::kBadPayload: return "bad_payload";
    case SnapshotError::kStateMismatch: return "state_mismatch";
    case SnapshotError::kIoError: return "io_error";
  }
  return "unknown";
}

void SnapshotBuilder::add_section(std::uint16_t id, std::uint16_t version,
                                  const std::vector<std::uint8_t>& payload) {
  require(payload.size() <= kMaxSectionPayload,
          "SnapshotBuilder: section payload exceeds kMaxSectionPayload");
  require(sections_.size() < kMaxSections,
          "SnapshotBuilder: too many sections");
  for (const Section& s : sections_) {
    require(s.id != id, "SnapshotBuilder: duplicate section id");
  }
  sections_.push_back(Section{id, version, payload});
}

std::vector<std::uint8_t> SnapshotBuilder::finish() const {
  std::size_t total = kHeaderSize;
  for (const Section& s : sections_) total += kSectionHeaderSize + s.payload.size();
  require(total <= 0xFFFFFFFFull, "SnapshotBuilder: snapshot exceeds 4 GiB");

  std::vector<std::uint8_t> out;
  out.reserve(total);
  out.insert(out.end(), kSnapshotMagic, kSnapshotMagic + 4);
  put_u16(out, kSnapshotVersion);
  put_u16(out, static_cast<std::uint16_t>(sections_.size()));
  put_u32(out, static_cast<std::uint32_t>(total));
  out.push_back(crc8(out.data(), kHeaderSize - 1));

  for (const Section& s : sections_) {
    const std::size_t header_at = out.size();
    put_u16(out, s.id);
    put_u16(out, s.version);
    put_u32(out, static_cast<std::uint32_t>(s.payload.size()));
    out.push_back(0);  // crc placeholder, zeroed while the CRC is computed
    out.insert(out.end(), s.payload.begin(), s.payload.end());
    out[header_at + kSectionHeaderSize - 1] =
        crc8(out.data() + header_at, kSectionHeaderSize + s.payload.size());
  }
  return out;
}

Result<SnapshotView, SnapshotError> SnapshotView::parse(
    const std::uint8_t* bytes, std::size_t n) {
  using R = Result<SnapshotView, SnapshotError>;
  if (n < kHeaderSize) return R::err(SnapshotError::kTruncated);
  if (std::memcmp(bytes, kSnapshotMagic, 4) != 0) {
    return R::err(SnapshotError::kBadMagic);
  }
  if (crc8(bytes, kHeaderSize - 1) != bytes[kHeaderSize - 1]) {
    return R::err(SnapshotError::kBadHeaderCrc);
  }
  const std::uint16_t version = get_u16(bytes + 4);
  if (version == 0 || version > kSnapshotVersion) {
    return R::err(SnapshotError::kBadVersion);
  }
  const std::uint16_t section_count = get_u16(bytes + 6);
  const std::uint32_t total_len = get_u32(bytes + 8);
  if (total_len != n) return R::err(SnapshotError::kTruncated);
  if (section_count > kMaxSections) {
    return R::err(SnapshotError::kBadSectionHeader);
  }

  SnapshotView view;
  view.sections_.reserve(section_count);
  std::size_t pos = kHeaderSize;
  for (std::uint16_t i = 0; i < section_count; ++i) {
    if (n - pos < kSectionHeaderSize) return R::err(SnapshotError::kTruncated);
    const std::uint8_t* header = bytes + pos;
    const std::uint32_t payload_len = get_u32(header + 4);
    if (payload_len > kMaxSectionPayload) {
      return R::err(SnapshotError::kBadSectionHeader);
    }
    if (n - pos - kSectionHeaderSize < payload_len) {
      return R::err(SnapshotError::kTruncated);
    }
    // The section CRC covers its header (crc byte zeroed) plus payload, so
    // a flipped id or length cannot smuggle a valid payload elsewhere.
    std::uint8_t scratch[kSectionHeaderSize];
    std::memcpy(scratch, header, kSectionHeaderSize);
    const std::uint8_t stored_crc = scratch[kSectionHeaderSize - 1];
    scratch[kSectionHeaderSize - 1] = 0;
    const std::uint8_t crc = crc8_update(
        crc8(scratch, kSectionHeaderSize), header + kSectionHeaderSize,
        payload_len);
    if (crc != stored_crc) return R::err(SnapshotError::kBadSectionCrc);

    SectionView section;
    section.id = get_u16(header);
    section.version = get_u16(header + 2);
    section.payload = header + kSectionHeaderSize;
    section.size = payload_len;
    for (const SectionView& seen : view.sections_) {
      if (seen.id == section.id) {
        return R::err(SnapshotError::kDuplicateSection);
      }
    }
    view.sections_.push_back(section);
    pos += kSectionHeaderSize + payload_len;
  }
  if (pos != n) return R::err(SnapshotError::kTruncated);
  return R::ok(std::move(view));
}

const SectionView* SnapshotView::find(std::uint16_t id) const {
  for (const SectionView& s : sections_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

}  // namespace biosense::snapshot
