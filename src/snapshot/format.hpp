// Versioned, CRC-guarded snapshot container (DESIGN.md §13).
//
// A snapshot is a flat sequence of length-prefixed sections behind a fixed
// header, every byte covered by a CRC-8 (the same 0x07 polynomial as the
// dnachip serial frames and the fleet host protocol):
//
//   offset  size  field                 file header (13 bytes)
//        0     4  magic        "BSNP" (0x42 0x53 0x4E 0x50 on disk)
//        4     2  version      container version (kSnapshotVersion)
//        6     2  section_count
//        8     4  total_len    whole file, header included
//       12     1  crc          CRC-8 over bytes [0, 12)
//
//   per section (9-byte header + payload):
//        0     2  id           section id (producer-defined registry)
//        2     2  version      section schema version
//        4     4  payload_len
//        8     1  crc          CRC-8 over this header (crc byte zeroed)
//                              followed by the payload bytes
//
// Corruption contract: any single-bit flip anywhere in the file is caught
// by a CRC (header flips by the header CRC — including the CRC byte
// itself — section flips by that section's CRC, which covers the section
// header so a flipped id/length cannot redirect a valid payload);
// truncation at any byte is caught by total_len / section length
// accounting. Multi-bit collisions that defeat an 8-bit CRC still land in
// bounds-checked StateReader parsing, so the worst outcome is a typed
// error, never UB — test_snapshot flips every bit and truncates at every
// length to hold this line.
//
// Forward compatibility: readers iterate the section table and skip ids
// they do not recognize, so a newer writer can append sections without
// breaking older readers; bumping kSnapshotVersion is reserved for layout
// changes an old reader would misparse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/result.hpp"

namespace biosense::snapshot {

inline constexpr std::uint8_t kSnapshotMagic[4] = {0x42, 0x53, 0x4E, 0x50};
inline constexpr std::uint16_t kSnapshotVersion = 1;
inline constexpr std::size_t kHeaderSize = 13;
inline constexpr std::size_t kSectionHeaderSize = 9;
/// Sanity caps: a snapshot that claims more is rejected as corrupt before
/// any allocation is sized from untrusted bytes.
inline constexpr std::size_t kMaxSections = 4096;
inline constexpr std::size_t kMaxSectionPayload = std::size_t{1} << 28;

/// Typed rejection reasons for snapshot parsing and checkpoint I/O.
enum class SnapshotError : std::uint8_t {
  kTruncated = 0,       // fewer bytes than a length field promises
  kBadMagic,            // not a snapshot at all
  kBadVersion,          // container newer than this reader
  kBadHeaderCrc,        // header checksum rejected the file
  kBadSectionHeader,    // section table violates the sanity caps
  kBadSectionCrc,       // a section checksum rejected its bytes
  kDuplicateSection,    // the same section id appears twice
  kMissingSection,      // a section the consumer requires is absent
  kBadPayload,          // a section payload failed schema validation
  kStateMismatch,       // snapshot disagrees with the restore target
  kIoError,             // filesystem failure (open/write/rename)
};

/// Stable diagnostic name ("truncated", "bad_section_crc", ...).
const char* snapshot_error_name(SnapshotError err);

/// One parsed section: a view into the snapshot buffer handed to
/// `SnapshotView::parse` (valid only while that buffer lives).
struct SectionView {
  std::uint16_t id = 0;
  std::uint16_t version = 0;
  const std::uint8_t* payload = nullptr;
  std::size_t size = 0;
};

/// Assembles a snapshot file: add sections, then `finish()`.
class SnapshotBuilder {
 public:
  /// Appends one section. Payload bytes are copied; duplicate ids and
  /// oversized payloads throw ConfigError — producing an unloadable
  /// snapshot is a bug, not a runtime condition.
  void add_section(std::uint16_t id, std::uint16_t version,
                   const std::vector<std::uint8_t>& payload);

  /// Serializes header + section table into one contiguous buffer.
  std::vector<std::uint8_t> finish() const;

 private:
  struct Section {
    std::uint16_t id;
    std::uint16_t version;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Section> sections_;
};

/// Validated parse of a snapshot buffer. Every CRC and length is checked
/// up front; consumers then `find()` their sections and parse payloads
/// with StateReader.
class SnapshotView {
 public:
  static Result<SnapshotView, SnapshotError> parse(const std::uint8_t* bytes,
                                                   std::size_t n);
  static Result<SnapshotView, SnapshotError> parse(
      const std::vector<std::uint8_t>& bytes) {
    return parse(bytes.data(), bytes.size());
  }

  /// The section with this id, or nullptr when absent (unknown ids are
  /// simply never asked for — that is the forward-compatible skip).
  const SectionView* find(std::uint16_t id) const;

  const std::vector<SectionView>& sections() const { return sections_; }

 private:
  std::vector<SectionView> sections_;
};

}  // namespace biosense::snapshot
