// Crash-safe checkpoint I/O (DESIGN.md §13.3).
//
// `write_file_atomic` is the ONLY place in src/snapshot/ that opens a file
// for writing (lint rule 8 enforces this): bytes go to `<path>.tmp` first
// and are renamed over `<path>` only after a successful flush+close, so a
// crash mid-write leaves either the old file or no file — never a torn
// one. `CheckpointStore` layers a two-deep rotation on top: saving demotes
// the current good checkpoint to `<name>.ckpt.prev` before the rename, and
// loading falls back to it when the current file fails validation (bit
// rot, a torn tmp rename window, an injected corruption plan).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "snapshot/format.hpp"

namespace biosense::snapshot {

/// Writes `n` bytes to `path` via the write-to-temp-then-rename protocol.
Result<void, SnapshotError> write_file_atomic(const std::string& path,
                                              const std::uint8_t* data,
                                              std::size_t n);

inline Result<void, SnapshotError> write_file_atomic(
    const std::string& path, const std::vector<std::uint8_t>& bytes) {
  return write_file_atomic(path, bytes.data(), bytes.size());
}

/// Reads a whole file; kIoError when it cannot be opened or read.
Result<std::vector<std::uint8_t>, SnapshotError> read_file(
    const std::string& path);

/// Rotating two-slot checkpoint home for one named state stream.
class CheckpointStore {
 public:
  /// `dir` is created if missing (surfaced as kIoError on first save when
  /// creation failed). `name` keys the slot files inside it.
  CheckpointStore(std::string dir, std::string name);

  const std::string& path() const { return path_; }
  const std::string& prev_path() const { return prev_path_; }

  /// Demotes the current checkpoint (if any) to the .prev slot, then
  /// writes `bytes` atomically into the current slot.
  Result<void, SnapshotError> save(const std::vector<std::uint8_t>& bytes);

  /// Loads the newest checkpoint whose container validates: tries the
  /// current slot first and falls back to .prev when the current one is
  /// missing, truncated or corrupt. The error reported is the *current*
  /// slot's failure when both fail (the actionable one).
  Result<std::vector<std::uint8_t>, SnapshotError> load() const;

 private:
  std::string dir_;
  std::string path_;
  std::string prev_path_;
};

}  // namespace biosense::snapshot
