#!/usr/bin/env bash
# Tier-1 CI: build + test in the default configuration, then again under
# AddressSanitizer, ThreadSanitizer and UndefinedBehaviorSanitizer
# (BIOSENSE_SANITIZE hooks the whole tree; the TSan pass exercises the
# deterministic parallel capture paths, and the UBSan pass is built with
# -fno-sanitize-recover=all so any report is a hard test failure).
#
# All configurations build with BIOSENSE_WERROR=ON: a warning anywhere in
# the tree fails CI. After the sanitizer matrix three gates run: the
# bench-regression gate (reruns the key benches and diffs their JSON
# artifacts against bench/baselines/ via tools/bench_check.py), clang-tidy
# (if installed — skipped with a note otherwise) and the repo-invariant
# analyzer via the deprecated tools/lint.sh shim. Each configuration also
# builds biosense-analyze first and runs it before the full build, so an
# invariant break fails fast instead of after a long sanitizer compile.
#
# Usage: ./ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1" sanitize="$2" obs="$3"
  shift 3
  local dir="build-ci-${name}"
  echo "=== [${name}] configure (BIOSENSE_SANITIZE='${sanitize}'" \
       "BIOSENSE_OBS=${obs}) ==="
  cmake -B "${dir}" -S . -DBIOSENSE_SANITIZE="${sanitize}" \
        -DBIOSENSE_OBS="${obs}" -DBIOSENSE_WERROR=ON >/dev/null
  echo "=== [${name}] analyze (repo invariants, before the full build) ==="
  cmake --build "${dir}" -j "${JOBS}" --target biosense-analyze
  "${dir}/tools/analyze/biosense-analyze" --root .
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${name}] ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" "$@"
}

# The asan and tsan passes build with the observability instrumentation
# compiled in: the TSan pass then races the lock-free metrics and per-thread
# trace buffers against the parallel capture engine, which is exactly where
# an instrumentation bug would hide. The default and ubsan passes keep
# OBS=OFF so the shipped (instrumentation-free) configuration is what the
# bench gate below times.
run_config default "" OFF "$@"
run_config asan address ON "$@"
run_config tsan thread ON "$@"
run_config ubsan undefined OFF "$@"

echo "=== [bench-gate] bench artifacts vs committed baselines ==="
if command -v python3 >/dev/null 2>&1; then
  BENCH_SCRATCH="$(mktemp -d)"
  trap 'rm -rf "${BENCH_SCRATCH}"' EXIT
  for bench in bench_fig3_i2f bench_fig6_neurochip bench_robust_readout; do
    BIOSENSE_RESULTS_DIR="${BENCH_SCRATCH}" \
      "build-ci-default/bench/${bench}" --benchmark_filter='^$' >/dev/null
  done
  BIOSENSE_RESULTS_DIR="${BENCH_SCRATCH}" \
    build-ci-default/bench/bench_parallel_scaling \
    --frames 32 --rows 32 --cols 32 >/dev/null
  BIOSENSE_RESULTS_DIR="${BENCH_SCRATCH}" \
    build-ci-default/bench/bench_streaming_pipeline \
    --frames 48 --rows 32 --cols 32 >/dev/null
  # Full-scale fleet load: >=1M commands over 256 mixed sessions at 1/2/8
  # workers, with the bitwise-determinism and zero-steady-alloc contracts
  # checked both in-process (the bench exits nonzero itself) and again by
  # bench_check.py against the committed baseline.
  BIOSENSE_RESULTS_DIR="${BENCH_SCRATCH}" \
    build-ci-default/bench/bench_fleet_server >/dev/null
  # Sharded soak replay: every shard checkpoints through the crash-safe
  # store and resumes independently; the merged digest must equal the
  # unsharded reference and a resumed session must stay alloc-free —
  # enforced in-process (nonzero exit) and re-checked by bench_check.py.
  BIOSENSE_RESULTS_DIR="${BENCH_SCRATCH}" \
    build-ci-default/bench/bench_soak_replay >/dev/null
  python3 tools/bench_check.py --results-dir "${BENCH_SCRATCH}"
  # Smoke the first-party report tool over the fresh artifacts: run
  # manifests plus the wire-decoded metrics snapshot the fleet bench
  # fetched via the v4 kGetMetrics command.
  python3 tools/obs_report.py --results-dir "${BENCH_SCRATCH}" \
    --metrics "${BENCH_SCRATCH}/bench_fleet_server.metrics.json" >/dev/null
else
  echo "python3 not installed; skipping bench gate (tools/bench_check.py)"
fi

echo "=== [clang-tidy] static analysis ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # Reuse the default config's compile commands; .clang-tidy at the repo
  # root selects the checks.
  cmake -B build-ci-default -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p build-ci-default --quiet --warnings-as-errors='*'
else
  echo "clang-tidy not installed; skipping (checks are configured in"
  echo ".clang-tidy and run automatically where the tool is available)"
fi

echo "=== [lint] repo invariants ==="
./tools/lint.sh

echo "=== CI: all four sanitizer configurations + static gates passed ==="
