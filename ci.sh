#!/usr/bin/env bash
# Tier-1 CI: build + test in the default configuration, then again under
# AddressSanitizer, ThreadSanitizer and UndefinedBehaviorSanitizer
# (BIOSENSE_SANITIZE hooks the whole tree; the TSan pass exercises the
# deterministic parallel capture paths, and the UBSan pass is built with
# -fno-sanitize-recover=all so any report is a hard test failure).
#
# All configurations build with BIOSENSE_WERROR=ON: a warning anywhere in
# the tree fails CI. After the sanitizer matrix, two static gates run:
# clang-tidy (if installed — skipped with a note otherwise) and the
# repo-invariant linter tools/lint.sh.
#
# Usage: ./ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1" sanitize="$2"
  shift 2
  local dir="build-ci-${name}"
  echo "=== [${name}] configure (BIOSENSE_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S . -DBIOSENSE_SANITIZE="${sanitize}" \
        -DBIOSENSE_WERROR=ON >/dev/null
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${name}] ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" "$@"
}

run_config default "" "$@"
run_config asan address "$@"
run_config tsan thread "$@"
run_config ubsan undefined "$@"

echo "=== [clang-tidy] static analysis ==="
if command -v clang-tidy >/dev/null 2>&1; then
  # Reuse the default config's compile commands; .clang-tidy at the repo
  # root selects the checks.
  cmake -B build-ci-default -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  find src -name '*.cpp' -print0 |
    xargs -0 clang-tidy -p build-ci-default --quiet --warnings-as-errors='*'
else
  echo "clang-tidy not installed; skipping (checks are configured in"
  echo ".clang-tidy and run automatically where the tool is available)"
fi

echo "=== [lint] repo invariants ==="
./tools/lint.sh

echo "=== CI: all four sanitizer configurations + static gates passed ==="
