#!/usr/bin/env bash
# Tier-1 CI: build + test in the default configuration, then again under
# AddressSanitizer and ThreadSanitizer (BIOSENSE_SANITIZE hooks the whole
# tree; the TSan pass exercises the deterministic parallel capture paths).
#
# Usage: ./ci.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="$(nproc 2>/dev/null || echo 4)"

run_config() {
  local name="$1" sanitize="$2"
  shift 2
  local dir="build-ci-${name}"
  echo "=== [${name}] configure (BIOSENSE_SANITIZE='${sanitize}') ==="
  cmake -B "${dir}" -S . -DBIOSENSE_SANITIZE="${sanitize}" >/dev/null
  echo "=== [${name}] build ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${name}] ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" "$@"
}

run_config default "" "$@"
run_config asan address "$@"
run_config tsan thread "$@"

echo "=== CI: all three configurations passed ==="
