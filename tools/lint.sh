#!/usr/bin/env bash
# Repo-invariant linter, wired as a tier-1 ctest (see tests/CMakeLists.txt)
# and as a ci.sh gate. Every rule greps for a pattern that has bitten a
# simulation codebase before:
#
#  1. C rand()/srand(): not reproducible across libcs, poor statistics.
#     All randomness must flow through common/rng.hpp (PCG, forkable).
#  2. Wall-clock seeding (time(NULL)/time(nullptr)): makes runs
#     unreproducible; seeds are explicit everywhere in this repo.
#  3. std::random_device / unseeded std::mt19937: nondeterministic or
#     default-seeded standard-library engines bypass the Rng discipline.
#  4. Raw unit-suffixed magic numbers in typed config headers: once a
#     module's config surface uses Quantity types, a nonzero double member
#     initializer annotated with a bare electrical unit (e.g. `= 1e-3;
#     // V`) is a regression — it belongs in a typed literal (1.0_mV).
#     Modules not yet migrated (neuro/, dsp/, most of dna/) are out of
#     scope until their surfaces are typed.
#  5. Ad-hoc wall-clock timing in library code: std::chrono clocks in src/
#     bypass the observability subsystem (obs::now_ns, BIOSENSE_SPAN,
#     obs::PhaseTimer), which is the one place timing is allowed to touch
#     the clock — it keeps instrumentation centrally gated and the
#     simulation paths free of hidden time dependence. Benches and tests
#     may time things directly.
#  6. Collect-all frame APIs in src/ headers: a function returning
#     `std::vector<NeuroFrame>` buffers an unbounded recording in memory,
#     which the streaming pipeline (StreamSink + FramePool) exists to
#     avoid. New acquisition APIs must take a StreamSink; only the
#     explicitly tagged batch compat wrappers may return the full vector.
#  7. Bool-returning fallible APIs in src/host/ headers: the host layer's
#     error convention is Result<T, HostStatus> / typed statuses (see
#     DESIGN.md §12); a `bool do_thing(...)` collapses every failure mode
#     into one bit and invites silently-ignored errors. Pure predicates
#     (is_*/has_*, ok/exhausted/empty/closed/any/decoded) are fine — they
#     report state, not success of an attempted operation.
#  8. Raw file writes in src/snapshot/: every byte a checkpoint puts on
#     disk must go through the atomic write-temp-then-rename protocol in
#     atomic_file.cpp, or a crash mid-write leaves a torn file that the
#     CRC layer can only reject, not recover. fopen/ofstream/fstream
#     anywhere else in src/snapshot/ bypasses that crash-safety boundary.
#
# A line can opt out of rule 4 with a `lint:allow-raw-unit` comment when a
# raw double is deliberate (e.g. a hot-loop-internal cache), of rule 6
# with `lint:allow-batch-return` on the declaration line (reserved for the
# documented compat wrappers), and of rule 7 with `lint:allow-bool` when
# the bool genuinely is a single-bit fact (e.g. ByteLink::roundtrip's
# delivered-or-lost transport signal).
set -uo pipefail
cd "$(dirname "$0")/.."

status=0

fail() {
  echo "lint: $1"
  echo "$2" | sed 's/^/    /'
  echo
  status=1
}

# All first-party sources; build trees excluded.
mapfile -t all_sources < <(find src tests bench examples tools \
    -name '*.cpp' -o -name '*.hpp' -o -name '*.sh' | sort)

# --- rule 1: C rand()/srand() -----------------------------------------------
hits=$(grep -nE '(std::rand|std::srand|[^_[:alnum:]]srand *\(|[^_[:alnum:]]rand *\( *\))' \
    "${all_sources[@]}" /dev/null | grep -v 'lint\.sh' || true)
if [[ -n "${hits}" ]]; then
  fail "C rand()/srand() is banned; use common/rng.hpp (Rng)" "${hits}"
fi

# --- rule 2: wall-clock seeding ---------------------------------------------
hits=$(grep -nE 'time *\( *(NULL|nullptr|0) *\)' \
    "${all_sources[@]}" /dev/null | grep -v 'lint\.sh' || true)
if [[ -n "${hits}" ]]; then
  fail "wall-clock seeding (time(NULL)) is banned; seeds are explicit" \
       "${hits}"
fi

# --- rule 3: nondeterministic / default-seeded std engines -------------------
hits=$(grep -nE 'std::random_device|mt19937(_64)? +[_[:alnum:]]+ *;|mt19937(_64)? *\( *\)' \
    "${all_sources[@]}" /dev/null | grep -v 'lint\.sh' || true)
if [[ -n "${hits}" ]]; then
  fail "std::random_device / unseeded mt19937 bypass the Rng discipline" \
       "${hits}"
fi

# --- rule 4: raw unit-suffixed initializers in typed config headers ----------
typed_headers=$(find src/i2f src/dnachip src/neurochip src/circuit src/noise \
    -name '*.hpp' | sort)
typed_headers+=" src/dna/electrochemistry.hpp src/dna/electrode.hpp"
typed_headers+=" src/dna/labelfree.hpp src/core/dna_workbench.hpp"
typed_headers+=" src/core/neural_workbench.hpp"
units='V|mV|uV|A|mA|uA|nA|pA|fA|F|uF|nF|pF|fF|s|ms|us|ns|Hz|kHz|MHz'
units+='|Ohm|kOhm|MOhm|m|um|nm|M|mM|uM|nM|pM'
# shellcheck disable=SC2086
hits=$(grep -nE "double [_[:alnum:]]+ = [0-9][0-9.e+-]*; *// *\(?(${units})([ ,).]|\$)" \
    ${typed_headers} /dev/null |
    grep -vE '= *0(\.0*)? *;' | grep -v 'lint:allow-raw-unit' || true)
if [[ -n "${hits}" ]]; then
  fail "raw unit-suffixed magic number in a typed config header; use a \
Quantity literal (e.g. 1.0_mV) or annotate lint:allow-raw-unit" "${hits}"
fi

# --- rule 5: ad-hoc std::chrono clocks in library code -----------------------
mapfile -t lib_sources < <(find src -name '*.cpp' -o -name '*.hpp' |
    grep -v '^src/obs/' | sort)
hits=$(grep -nE 'std::chrono::(steady_clock|system_clock|high_resolution_clock)' \
    "${lib_sources[@]}" /dev/null || true)
if [[ -n "${hits}" ]]; then
  fail "std::chrono clocks in src/ are banned outside src/obs/; use \
obs::now_ns / BIOSENSE_SPAN / obs::PhaseTimer" "${hits}"
fi

# --- rule 6: collect-all frame returns in src/ headers -----------------------
mapfile -t src_headers < <(find src -name '*.hpp' | sort)
hits=$(grep -nE 'std::vector<(neurochip::)?NeuroFrame> +[_[:alnum:]]+\(' \
    "${src_headers[@]}" /dev/null | grep -v 'lint:allow-batch-return' || true)
if [[ -n "${hits}" ]]; then
  fail "APIs returning std::vector<NeuroFrame> are banned in src/ headers; \
take a StreamSink<NeuroFrame>& (see common/stream.hpp) or tag a documented \
compat wrapper with lint:allow-batch-return" "${hits}"
fi

# --- rule 7: bool-returning fallible APIs in src/host/ headers ---------------
mapfile -t host_headers < <(find src/host -name '*.hpp' | sort)
if [[ ${#host_headers[@]} -gt 0 ]]; then
  hits=$(grep -nE '(virtual +)?bool +[_[:alnum:]]+ *\(' \
      "${host_headers[@]}" /dev/null |
      grep -vE 'bool +(is_|has_)[_[:alnum:]]+ *\(' |
      grep -vE 'bool +(ok|exhausted|empty|closed|any|decoded) *\(' |
      grep -v 'lint:allow-bool' || true)
  if [[ -n "${hits}" ]]; then
    fail "bool-returning fallible API in a src/host/ header; return \
Result<T, HostStatus> (common/result.hpp, DESIGN.md §12) or, for a genuine \
single-bit fact, annotate lint:allow-bool" "${hits}"
  fi
fi

# --- rule 8: raw file writes in src/snapshot/ outside the atomic writer ------
mapfile -t snapshot_sources < <(find src/snapshot \
    \( -name '*.cpp' -o -name '*.hpp' \) ! -name 'atomic_file.cpp' | sort)
if [[ ${#snapshot_sources[@]} -gt 0 ]]; then
  hits=$(grep -nE 'std::fopen|[^_[:alnum:]]fopen *\(|std::ofstream|std::fstream|std::FILE' \
      "${snapshot_sources[@]}" /dev/null || true)
  if [[ -n "${hits}" ]]; then
    fail "raw file I/O in src/snapshot/ is banned outside atomic_file.cpp; \
checkpoint bytes must go through write_file_atomic / CheckpointStore \
(crash-safe write-temp-then-rename)" "${hits}"
  fi
fi

if [[ ${status} -eq 0 ]]; then
  echo "lint: all invariants hold"
fi
exit ${status}
