#!/usr/bin/env bash
# DEPRECATED SHIM. The grep rules that used to live here are now rules
# 1-8 of biosense-analyze (tools/analyze/, DESIGN.md §14), alongside the
# cross-file rule families (snapshot completeness, protocol schema, obs
# naming) a per-line grep could never check. This script survives only
# so existing muscle memory and CI hooks keep working: it locates a
# built biosense-analyze and execs it, preserving the clickable
# `file:line: rule: message` output and the nonzero-on-findings exit.
#
# Prefer calling the analyzer directly:
#   cmake --build <builddir> --target biosense-analyze
#   <builddir>/tools/analyze/biosense-analyze --root .
set -euo pipefail
cd "$(dirname "$0")/.."

bin="${BIOSENSE_ANALYZE_BIN:-}"
if [[ -z "${bin}" ]]; then
  for dir in build build-ci-default build-ci-asan build-ci-tsan \
             build-ci-ubsan build*; do
    candidate="${dir}/tools/analyze/biosense-analyze"
    if [[ -x "${candidate}" ]]; then
      bin="${candidate}"
      break
    fi
  done
fi

if [[ -z "${bin}" || ! -x "${bin}" ]]; then
  echo "tools/lint.sh (deprecated shim): no built biosense-analyze found." >&2
  echo "Build it first:  cmake --build <builddir> --target biosense-analyze" >&2
  echo "or point BIOSENSE_ANALYZE_BIN at the binary." >&2
  exit 2
fi

echo "tools/lint.sh is deprecated; running ${bin} --root . instead." >&2
exec "${bin}" --root .
