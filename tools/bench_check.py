#!/usr/bin/env python3
"""Bench-regression gate: diff fresh bench artifacts against committed
baselines.

Baselines live in bench/baselines/ and are committed copies of the JSON
artifacts the benches write into results/ (claim reports, run manifests,
and the parallel-scaling summary). CI reruns the benches into a scratch
directory and calls this script; any regression fails the build.

Comparison rules, per artifact kind:

  * Claim reports (``bench_*.json``, a JSON array of report objects):
      - every baseline report/check must still exist (matched by title and
        quantity);
      - a check that passed in the baseline must still pass;
      - numeric measured values must agree within --tol relative tolerance
        (the leading number is compared; the non-numeric remainder, e.g.
        an SI unit, must match exactly so a silent 1000x scale change
        cannot hide inside the tolerance).
  * Run manifests (``*.manifest.json``):
      - every baseline phase name must still be present, in order;
      - wall times are machine-dependent and only checked with
        --check-time, which enforces ``wall_s <= baseline * (1 + tol)``.
  * Scaling summaries (objects with an ``all_identical`` key):
      - ``all_identical`` must be true (the determinism contract);
      - the thread counts covered must not shrink;
      - the single-thread frames/s must not drop below half the baseline's
        (the no-regress floor for the SoA capture kernel);
      - with >= 4 hardware threads the best multi-thread speedup must
        exceed 1.0 (negative scaling is a bug, not a machine property);
        on smaller machines oversubscription must still keep >= 0.5x;
      - when the baseline has a ``sparse`` section (the event-driven
        quiescent-pixel leg), the fresh run must too, its cross-thread
        digests must match, and its single-thread frames/s obeys the same
        half-of-baseline floor.
  * Soak-replay reports (objects with a ``shard_merge_identical`` key):
      - ``segmented_identical``, ``resume_identical`` and
        ``shard_merge_identical`` must all be true in the fresh run —
        checkpoint/resume bit-exactness is an absolute contract, not a
        diffed quantity;
      - ``steady_allocs_per_frame`` must be exactly zero (a resumed
        session keeps the pooled pipeline's alloc-free steady state);
      - the shard count and frame count must not shrink below the
        baseline's, so the soak cannot quietly degenerate into a single
        unsharded run.
  * Fleet-server load reports (objects with a ``latency`` key):
      - ``deterministic`` and ``pass`` must be true, ``errors`` and
        ``steady_allocs_per_command`` must be zero in the fresh run
        (the hard contracts — these are absolute, not diffed);
      - per worker entry the closed- and open-loop percentiles must be
        ordered (p50 <= p95 <= p99);
      - the worker counts covered must not shrink, and the fresh run must
        not cover fewer sessions or commands than the baseline did;
      - the ``telemetry`` section must show digests unchanged with flight
        recorders on (``telemetry_deterministic``), an aggregate
        throughput tax of at most 5%, zero server flight-ring drops and
        zero monitor errors at baseline load, zero allocations per warm
        health probe, and ordered health/metrics latency percentiles.
      Raw latency magnitudes are machine-dependent and deliberately not
      gated here; ordering + scale + determinism are the invariants.

Usage:
  tools/bench_check.py [--baseline-dir DIR] [--results-dir DIR]
                       [--tol REL] [--check-time] [names...]

With no names, every ``*.json`` in the baseline dir is checked. Exit code
0 = no regressions, 1 = regression or missing artifact, 2 = usage error.
"""

import argparse
import json
import os
import re
import sys

_NUM = re.compile(r"[-+]?\d*\.?\d+(?:[eE][-+]?\d+)?")


def split_measured(text):
    """'560 nA' -> (560.0, 'nA'); 'OK' -> (None, 'OK')."""
    text = str(text).strip()
    m = _NUM.search(text)
    if not m:
        return None, text
    rest = (text[: m.start()] + text[m.end():]).strip()
    return float(m.group(0)), rest


def rel_diff(a, b):
    scale = max(abs(a), abs(b))
    return 0.0 if scale == 0.0 else abs(a - b) / scale


class Gate:
    def __init__(self, tol, check_time):
        self.tol = tol
        self.check_time = check_time
        self.failures = []

    def fail(self, artifact, message):
        self.failures.append(f"{artifact}: {message}")

    # -- claim reports -------------------------------------------------------

    def check_claims(self, name, baseline, current):
        current_by_title = {r["title"]: r for r in current}
        for base_report in baseline:
            title = base_report["title"]
            cur_report = current_by_title.get(title)
            if cur_report is None:
                self.fail(name, f"report '{title}' disappeared")
                continue
            cur_checks = {c["quantity"]: c for c in cur_report["checks"]}
            for base_check in base_report["checks"]:
                quantity = base_check["quantity"]
                cur = cur_checks.get(quantity)
                where = f"'{title}' / '{quantity}'"
                if cur is None:
                    self.fail(name, f"check {where} disappeared")
                    continue
                if base_check["pass"] and not cur["pass"]:
                    self.fail(
                        name,
                        f"{where} regressed: was OK, now DEVIATES "
                        f"(measured {cur['measured']!r}, "
                        f"paper {cur['paper']!r})",
                    )
                base_num, base_rest = split_measured(base_check["measured"])
                cur_num, cur_rest = split_measured(cur["measured"])
                if base_num is None or cur_num is None:
                    continue  # non-numeric measured values: pass flag rules
                if base_rest != cur_rest:
                    self.fail(
                        name,
                        f"{where} changed scale/unit: "
                        f"{base_check['measured']!r} -> {cur['measured']!r}",
                    )
                elif rel_diff(base_num, cur_num) > self.tol:
                    self.fail(
                        name,
                        f"{where} moved beyond tol={self.tol:g}: "
                        f"{base_check['measured']!r} -> {cur['measured']!r}",
                    )

    # -- run manifests -------------------------------------------------------

    def check_manifest(self, name, baseline, current):
        base_phases = [p["name"] for p in baseline.get("phases", [])]
        cur_phases = [p["name"] for p in current.get("phases", [])]
        missing = [p for p in base_phases if p not in cur_phases]
        if missing:
            self.fail(name, f"manifest lost phases: {', '.join(missing)}")
        # Order of the surviving baseline phases must be preserved.
        survivors = [p for p in base_phases if p in cur_phases]
        positions = [cur_phases.index(p) for p in survivors]
        if positions != sorted(positions):
            self.fail(name, "manifest phase order changed")
        if self.check_time:
            cur_wall = {p["name"]: p["wall_s"] for p in current.get("phases", [])}
            for p in baseline.get("phases", []):
                limit = p["wall_s"] * (1.0 + self.tol)
                actual = cur_wall.get(p["name"])
                if actual is not None and actual > limit and actual > 0.01:
                    self.fail(
                        name,
                        f"phase '{p['name']}' slowed: {p['wall_s']:.4f}s -> "
                        f"{actual:.4f}s (limit {limit:.4f}s)",
                    )

    # -- scaling summaries ---------------------------------------------------

    FPS_FLOOR_FRACTION = 0.5

    @staticmethod
    def _fps_at(summary, threads):
        for r in summary.get("results", []):
            if r.get("threads") == threads:
                return r.get("frames_per_s")
        return None

    def check_scaling(self, name, baseline, current):
        if not current.get("all_identical", False):
            self.fail(name, "parallel capture is no longer bitwise identical")
        base_threads = {r["threads"] for r in baseline.get("results", [])}
        cur_threads = {r["threads"] for r in current.get("results", [])}
        lost = sorted(base_threads - cur_threads)
        if lost:
            self.fail(name, f"thread counts no longer covered: {lost}")

        # frames/s no-regress floor on the single-thread dense leg: the SoA
        # kernel's throughput trajectory must never quietly fall back toward
        # the per-pixel object model's. Half the committed baseline is the
        # floor so slower CI machines don't trip it; an AoS regression costs
        # far more than 2x.
        base_t1 = self._fps_at(baseline, 1)
        cur_t1 = self._fps_at(current, 1)
        if base_t1 and cur_t1 is not None:
            floor = base_t1 * self.FPS_FLOOR_FRACTION
            if cur_t1 < floor:
                self.fail(name, f"single-thread frames/s regressed: "
                                f"{base_t1:.1f} -> {cur_t1:.1f} "
                                f"(floor {floor:.1f})")

        # Multi-thread scaling gate. With real cores available, the top
        # thread count must beat single-thread (speedup > 1); negative
        # scaling means false sharing or chunking bugs crept back in. On
        # boxes with < 4 hardware threads a speedup is physically
        # unavailable, so only guard against oversubscription collapse.
        hw = current.get("hardware_threads", 0)
        multi = [r for r in current.get("results", [])
                 if r.get("threads", 1) > 1 and "speedup" in r]
        if multi:
            best = max(r["speedup"] for r in multi)
            if hw >= 4 and best <= 1.0:
                self.fail(name, f"negative multi-thread scaling: best "
                                f"speedup {best:.3f} <= 1.0 with "
                                f"{hw} hardware threads")
            elif hw < 4 and best < 0.5:
                self.fail(name, f"oversubscription collapse: best speedup "
                                f"{best:.3f} < 0.5 on a {hw}-thread machine")

        # Event-driven sparse leg: once the baseline records it, it can
        # neither disappear nor lose its cross-thread bitwise identity, and
        # its single-thread frames/s obeys the same half-of-baseline floor.
        base_sparse = baseline.get("sparse")
        if base_sparse:
            cur_sparse = current.get("sparse")
            if not isinstance(cur_sparse, dict):
                self.fail(name, "sparse (event-driven) leg disappeared")
                return
            if not cur_sparse.get("identical", False):
                self.fail(name, "sparse capture is no longer bitwise "
                                "identical across thread counts")
            base_s1 = self._fps_at(base_sparse, 1)
            cur_s1 = self._fps_at(cur_sparse, 1)
            if base_s1 and cur_s1 is not None:
                floor = base_s1 * self.FPS_FLOOR_FRACTION
                if cur_s1 < floor:
                    self.fail(name, f"sparse single-thread frames/s "
                                    f"regressed: {base_s1:.1f} -> "
                                    f"{cur_s1:.1f} (floor {floor:.1f})")

    # -- soak-replay reports -------------------------------------------------

    def check_soak(self, name, baseline, current):
        for key in ("segmented_identical", "resume_identical",
                    "shard_merge_identical"):
            if not current.get(key, False):
                self.fail(name, f"{key} is no longer true: checkpoint/resume "
                                "lost bit-exactness")
        allocs = current.get("steady_allocs_per_frame", None)
        if allocs != 0:
            self.fail(name, "resumed session allocates in steady state: "
                            f"{allocs} per frame (contract is 0)")
        for scale_key in ("shards", "frames"):
            base_n = baseline.get(scale_key, 0)
            cur_n = current.get(scale_key, 0)
            if cur_n < base_n:
                self.fail(name, f"{scale_key} shrank: {base_n} -> {cur_n}")
        for shard in current.get("shard_results", []):
            if not shard.get("identical", False):
                self.fail(name, f"shard {shard.get('shard', '?')} replay "
                                "diverged from its reference range")

    # -- fleet-server load reports -------------------------------------------

    def check_fleet(self, name, baseline, current):
        if not current.get("deterministic", False):
            self.fail(name, "per-session output is no longer bitwise "
                            "deterministic across worker counts")
        if not current.get("pass", False):
            self.fail(name, "bench self-check failed (pass=false)")
        if current.get("errors", 1) != 0:
            self.fail(name, f"command errors in fresh run: "
                            f"{current.get('errors')}")
        allocs = current.get("steady_allocs_per_command", None)
        if allocs != 0:
            self.fail(name, f"steady-state dispatch allocations crept in: "
                            f"{allocs} per command (contract is 0)")
        for entry in current.get("latency", []):
            workers = entry.get("workers", "?")
            for loop in ("closed", "open"):
                pcts = entry.get(loop, {})
                p50 = pcts.get("p50_us")
                p95 = pcts.get("p95_us")
                p99 = pcts.get("p99_us")
                if p50 is None or p95 is None or p99 is None:
                    self.fail(name, f"workers={workers} {loop}-loop entry "
                                    "is missing a percentile")
                elif not p50 <= p95 <= p99:
                    self.fail(
                        name,
                        f"workers={workers} {loop}-loop percentiles are "
                        f"unordered: p50={p50} p95={p95} p99={p99}",
                    )
        for scale_key in ("sessions", "commands_total"):
            base_n = baseline.get(scale_key, 0)
            cur_n = current.get(scale_key, 0)
            if cur_n < base_n:
                self.fail(name, f"{scale_key} shrank: {base_n} -> {cur_n}")
        base_workers = {e["workers"] for e in baseline.get("latency", [])}
        cur_workers = {e["workers"] for e in current.get("latency", [])}
        lost = sorted(base_workers - cur_workers)
        if lost:
            self.fail(name, f"worker counts no longer covered: {lost}")
        if "telemetry" in baseline:
            self.check_fleet_telemetry(name, current.get("telemetry"))

    # -- fleet telemetry contract (PR 9) -------------------------------------

    TELEMETRY_TAX_LIMIT = 0.05

    def check_fleet_telemetry(self, name, tel):
        if not isinstance(tel, dict):
            self.fail(name, "telemetry section missing from fresh run")
            return
        if not tel.get("telemetry_deterministic", False):
            self.fail(name, "session digests change when flight recorders "
                            "are enabled (telemetry must be invisible to "
                            "the data plane)")
        tax = tel.get("tax", None)
        if tax is None:
            self.fail(name, "telemetry tax missing")
        elif tax > self.TELEMETRY_TAX_LIMIT:
            self.fail(name, f"telemetry tax {tax:.1%} exceeds the "
                            f"{self.TELEMETRY_TAX_LIMIT:.0%} budget")
        if tel.get("flight_dropped", 1) != 0:
            self.fail(name, "server flight ring dropped "
                            f"{tel.get('flight_dropped')} events at "
                            "baseline load (contract is 0)")
        if tel.get("monitor_errors", 1) != 0:
            self.fail(name, f"monitor hit {tel.get('monitor_errors')} "
                            "unexpected statuses")
        if tel.get("health_allocs_per_probe", 1) != 0:
            self.fail(name, "warm health probes allocate: "
                            f"{tel.get('health_allocs_per_probe')} per "
                            "probe (contract is 0)")
        for probe in ("health", "metrics"):
            pcts = tel.get(probe, {})
            p50 = pcts.get("p50_us")
            p95 = pcts.get("p95_us")
            p99 = pcts.get("p99_us")
            if p50 is None or p95 is None or p99 is None:
                self.fail(name, f"telemetry {probe} latency entry is "
                                "missing a percentile")
            elif not p50 <= p95 <= p99:
                self.fail(name, f"telemetry {probe} percentiles are "
                                f"unordered: p50={p50} p95={p95} p99={p99}")

    # -- dispatch ------------------------------------------------------------

    def check_artifact(self, name, baseline_path, results_dir):
        current_path = os.path.join(results_dir, name)
        if not os.path.exists(current_path):
            self.fail(name, f"artifact missing from {results_dir}/ "
                            "(bench not run or write failed)")
            return
        with open(baseline_path) as f:
            baseline = json.load(f)
        try:
            with open(current_path) as f:
                current = json.load(f)
        except json.JSONDecodeError as err:
            self.fail(name, f"artifact is not valid JSON: {err}")
            return
        if isinstance(baseline, list):
            self.check_claims(name, baseline, current)
        elif "shard_merge_identical" in baseline:
            self.check_soak(name, baseline, current)
        elif "all_identical" in baseline:
            self.check_scaling(name, baseline, current)
        elif "latency" in baseline:
            self.check_fleet(name, baseline, current)
        elif "phases" in baseline:
            self.check_manifest(name, baseline, current)
        else:
            self.fail(name, "unrecognised baseline shape")


def main():
    parser = argparse.ArgumentParser(
        description="diff bench artifacts against committed baselines")
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--tol", type=float, default=0.05,
                        help="relative tolerance for numeric drift "
                             "(default 0.05)")
    parser.add_argument("--check-time", action="store_true",
                        help="also gate manifest phase wall times")
    parser.add_argument("names", nargs="*",
                        help="baseline file names to check "
                             "(default: all *.json in the baseline dir)")
    args = parser.parse_args()

    if not os.path.isdir(args.baseline_dir):
        print(f"bench_check: baseline dir {args.baseline_dir}/ not found",
              file=sys.stderr)
        return 2
    names = args.names or sorted(
        f for f in os.listdir(args.baseline_dir) if f.endswith(".json"))
    if not names:
        print("bench_check: no baselines to check", file=sys.stderr)
        return 2

    gate = Gate(args.tol, args.check_time)
    for name in names:
        baseline_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(baseline_path):
            gate.fail(name, "no such baseline")
            continue
        gate.check_artifact(name, baseline_path, args.results_dir)

    if gate.failures:
        print(f"bench_check: {len(gate.failures)} regression(s):")
        for f in gate.failures:
            print(f"  FAIL {f}")
        return 1
    print(f"bench_check: {len(names)} artifact(s) match baselines "
          f"(tol={args.tol:g})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
