#!/usr/bin/env python3
"""Render bench run manifests and decoded metrics snapshots as a text
report.

Inputs are the JSON artifacts the obs layer writes into results/ (or the
CI bench scratch dir):

  * ``*.manifest.json`` — per-bench run manifests (phases with wall time
    and RSS, plus the in-process metrics registry when the bench was
    built with BIOSENSE_OBS=ON);
  * a decoded metrics snapshot (``--metrics FILE``) in the registry JSON
    shape ``{"counters": {...}, "gauges": {...}, "histograms": {...}}`` —
    e.g. ``bench_fleet_server.metrics.json``, which the fleet bench
    fetches over the wire via the v4 kGetMetrics command, so the report
    shows exactly what a remote monitor sees.

The report has one section per manifest (phase table: wall seconds,
share of the run, peak RSS) and one for the metrics snapshot (counters,
gauges, histogram summaries, and a per-session rollup of any
``<prefix>.s<N>.<instrument>`` names minted by per-session observability).

Usage:
  tools/obs_report.py [--results-dir DIR] [--metrics FILE] [manifests...]

With no explicit manifest paths, every ``*.manifest.json`` under
--results-dir (default ``results``) is rendered. Exit code 0 on success,
1 when an input is missing or malformed, 2 on usage errors.
"""

import argparse
import glob
import json
import os
import re
import sys

_SESSION = re.compile(r"^([a-z0-9_]+)\.s(\d+)\.(.+)$")


def fmt_num(value):
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_phases(name, manifest, out):
    phases = manifest.get("phases", [])
    out.append(f"== {manifest.get('bench', name)} ==")
    out.append(f"  obs_enabled: {manifest.get('obs_enabled', False)}"
               f"   peak_rss_kb: {manifest.get('peak_rss_kb', '?')}")
    if not phases:
        out.append("  (no phases recorded)")
        return
    total = sum(p.get("wall_s", 0.0) for p in phases) or 1.0
    width = max(len(p.get("name", "?")) for p in phases)
    out.append(f"  {'phase'.ljust(width)}  {'wall [s]':>10}  {'share':>6}  "
               f"{'rss [kb]':>9}")
    for p in phases:
        wall = p.get("wall_s", 0.0)
        out.append(f"  {p.get('name', '?').ljust(width)}  {wall:>10.4f}  "
                   f"{wall / total:>6.1%}  {p.get('rss_kb', 0):>9}")


def render_metrics(title, metrics, out):
    out.append(f"== {title} ==")
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})

    # Per-session instruments (fleet.s42.ring.depth, ...) roll up into one
    # table per session; everything else lists flat.
    sessions = {}

    def split(kind, name, value):
        m = _SESSION.match(name)
        if m:
            key = (m.group(1), int(m.group(2)))
            sessions.setdefault(key, []).append((m.group(3), kind, value))
            return True
        return False

    flat_counters = {n: v for n, v in counters.items()
                     if not split("counter", n, v)}
    flat_gauges = {n: v for n, v in gauges.items()
                   if not split("gauge", n, v)}

    if flat_counters:
        width = max(map(len, flat_counters))
        out.append("  counters:")
        for name in sorted(flat_counters):
            out.append(f"    {name.ljust(width)}  "
                       f"{fmt_num(flat_counters[name])}")
    if flat_gauges:
        width = max(map(len, flat_gauges))
        out.append("  gauges:")
        for name in sorted(flat_gauges):
            out.append(f"    {name.ljust(width)}  "
                       f"{fmt_num(flat_gauges[name])}")
    if histograms:
        out.append("  histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            count = h.get("count", 0)
            mean = h.get("sum", 0.0) / count if count else 0.0
            out.append(f"    {name}: count={count} mean={mean:.6g} "
                       f"overflow={h.get('overflow', 0)}")
            for bucket in h.get("buckets", []):
                out.append(f"      le {fmt_num(bucket.get('le'))}: "
                           f"{bucket.get('count', 0)}")
    for (prefix, sid) in sorted(sessions):
        out.append(f"  session {prefix}.s{sid}:")
        rows = sorted(sessions[(prefix, sid)])
        width = max(len(r[0]) for r in rows)
        for instrument, kind, value in rows:
            out.append(f"    {instrument.ljust(width)}  {fmt_num(value)}  "
                       f"({kind})")
    if not (flat_counters or flat_gauges or histograms or sessions):
        out.append("  (snapshot is empty)")


def load_json(path):
    with open(path) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(
        description="render obs manifests + metrics snapshots as text")
    parser.add_argument("--results-dir", default="results")
    parser.add_argument("--metrics", default=None,
                        help="decoded metrics-snapshot JSON to render")
    parser.add_argument("manifests", nargs="*",
                        help="manifest files (default: *.manifest.json "
                             "under --results-dir)")
    args = parser.parse_args()

    paths = args.manifests or sorted(
        glob.glob(os.path.join(args.results_dir, "*.manifest.json")))
    if not paths and args.metrics is None:
        print(f"obs_report: nothing to render under {args.results_dir}/",
              file=sys.stderr)
        return 1

    out = []
    failed = False
    for path in paths:
        try:
            manifest = load_json(path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"obs_report: {path}: {err}", file=sys.stderr)
            failed = True
            continue
        render_phases(os.path.basename(path), manifest, out)
        embedded = manifest.get("metrics")
        if embedded:
            render_metrics(f"{manifest.get('bench', path)} metrics "
                           "(in-process registry)", embedded, out)
        out.append("")
    if args.metrics is not None:
        try:
            snapshot = load_json(args.metrics)
        except (OSError, json.JSONDecodeError) as err:
            print(f"obs_report: {args.metrics}: {err}", file=sys.stderr)
            failed = True
        else:
            render_metrics(f"{os.path.basename(args.metrics)} "
                           "(wire-decoded snapshot)", snapshot, out)
            out.append("")
    print("\n".join(out).rstrip())
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
