#include "analyzer.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "rules.hpp"

namespace biosense::analyze {

bool path_starts_with(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

bool is_header(const std::string& path) {
  return path.size() >= 4 && path.compare(path.size() - 4, 4, ".hpp") == 0;
}

std::string src_module(const std::string& path) {
  if (!path_starts_with(path, "src/")) return std::string();
  const std::size_t next = path.find('/', 4);
  if (next == std::string::npos) return std::string();
  return path.substr(4, next - 4);
}

std::vector<Finding> analyze(const std::vector<SourceFile>& files) {
  static const std::vector<std::string> kMacros = {
      "BIOSENSE_COUNT", "BIOSENSE_GAUGE", "BIOSENSE_OBSERVE",
      "BIOSENSE_FLIGHT", "BIOSENSE_FLIGHT_TO"};

  Tree tree;
  tree.reserve(files.size());
  for (const SourceFile& src : files) {
    AnalyzedFile af;
    af.src = src;
    af.lex = lex(src.content);
    af.facts = scan(af.lex, kMacros);
    tree.push_back(std::move(af));
  }

  Findings out;
  rule_snapshot(tree, out);
  rule_protocol(tree, out);
  rule_obs_names(tree, out);
  rule_lint_ported(tree, out);
  rule_neuro_hot_loop(tree, out);

  std::stable_sort(out.begin(), out.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return out;
}

std::string format_finding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ':' << f.line << ": " << f.rule << ": " << f.message;
  return os.str();
}

std::vector<std::pair<std::string, std::string>> rule_catalogue() {
  return {
      {"snapshot-coverage",
       "every data member of a save_state/load_state class is referenced in "
       "both hooks or annotated analyze:transient (with a reason)"},
      {"snapshot-mirror",
       "the StateWriter sequence in save_state mirrors the StateReader "
       "sequence in load_state in order and width"},
      {"snapshot-pair",
       "a class defining one of save_state/load_state defines the other"},
      {"proto-schema",
       "every HostCommand enumerator has exactly one dispatcher schema "
       "entry with min_version inside [kProtocolVersionMin, "
       "kProtocolVersionCurrent]; no duplicate command values"},
      {"proto-caps",
       "every kCap* capability bit is referenced by the server"},
      {"proto-names",
       "host_command_name/host_status_name cover every enumerator"},
      {"obs-name",
       "instrument and flight-event names are string literals, unique per "
       "kind and across modules, and use their module's claimed registry "
       "prefix"},
      {"no-c-rand", "C rand()/srand() banned; use common/rng.hpp (Rng)"},
      {"no-wallclock-seed",
       "time(NULL)/time(nullptr) seeding banned; seeds are explicit"},
      {"no-std-random-engine",
       "std::random_device / unseeded mt19937 bypass the Rng discipline"},
      {"raw-unit-literal",
       "raw unit-suffixed magic number in a typed config header; use a "
       "Quantity literal (escape: lint:allow-raw-unit)"},
      {"no-chrono-in-src",
       "std::chrono clocks banned in src/ outside src/obs/"},
      {"no-batch-return",
       "std::vector<NeuroFrame>-returning APIs banned in src/ headers "
       "(escape: lint:allow-batch-return)"},
      {"no-bool-fallible",
       "bool-returning fallible APIs banned in src/host/ headers "
       "(escape: lint:allow-bool)"},
      {"atomic-file-only",
       "raw file I/O in src/snapshot/ banned outside atomic_file.cpp"},
      {"neuro-hot-loop",
       "per-pixel accessor calls, heap allocation and std::function "
       "banned inside capture_frame_into's pixel loop — the SoA kernel "
       "stays on plane buffers (escape: analyze:allow-hot-loop)"},
  };
}

std::vector<SourceFile> load_tree(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path base(root);
  if (!fs::is_directory(base / "src")) {
    throw std::runtime_error("analyze: no src/ under root '" + root + "'");
  }

  std::vector<SourceFile> files;
  for (const char* top : {"src", "tests", "bench", "examples", "tools"}) {
    const fs::path dir = base / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".hpp" && ext != ".cpp") continue;
      std::string rel = fs::relative(entry.path(), base).generic_string();
      // The fixture corpus contains deliberate violations.
      if (path_starts_with(rel, "tests/analyze/fixtures/")) continue;
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream content;
      content << in.rdbuf();
      files.push_back(SourceFile{std::move(rel), content.str()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

}  // namespace biosense::analyze
