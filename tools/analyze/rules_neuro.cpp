// Neuro capture hot-loop discipline (rule `neuro-hot-loop`).
//
// The SoA refactor (DESIGN.md §16) earns its frames/s by keeping
// `capture_frame_into`'s pixel loop on contiguous plane buffers: no
// per-pixel accessor objects, no virtual dispatch through SensorPixel,
// no per-pixel heap traffic. This rule pins that property so it cannot
// silently rot back toward the per-pixel object model: inside the body
// of any `capture_frame_into` definition under src/neurochip/ it bans
//
//   * calls into the per-pixel accessor surface — `pixel(...)`,
//     `read_current(...)`, `sample(...)`, `elapse(...)`,
//     `calibrate(...)` — the bank's batch/prepared entry points
//     (`read_current_prepared`, `quiet_current`, `droop`,
//     `calibrate_pixels`, ...) are the sanctioned spellings;
//   * heap allocation — `new`, `push_back(`, `emplace_back(`,
//     `make_unique(`, `make_shared(` — the steady state allocates
//     nothing per frame;
//   * `std::function` — type-erased indirection heap-allocates beyond
//     the small-buffer size and blocks inlining in the hot loop.
//
// Escape hatch: `analyze:allow-hot-loop` on the flagged line, for the
// rare deliberate exception (with a reason in the comment).
#include <set>
#include <string>

#include "rules.hpp"

namespace biosense::analyze {
namespace {

using Tokens = std::vector<Token>;

bool ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}
bool punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// True when the token at `i + 1` opens a call, optionally after a
/// balanced template argument list: `name(`, `name<T>(`,
/// `name<std::vector<T>>(`. `>>` is one token in this lexer.
bool call_follows(const Tokens& t, std::size_t i, std::size_t end) {
  std::size_t j = i + 1;
  if (j < end && punct(t[j], "<")) {
    int depth = 0;
    for (std::size_t steps = 0; j < end && steps < 64; ++j, ++steps) {
      if (punct(t[j], "<")) ++depth;
      if (punct(t[j], ">")) --depth;
      if (punct(t[j], ">>")) depth -= 2;
      if (depth <= 0) {
        ++j;
        break;
      }
    }
    if (depth > 0) return false;
  }
  return j < end && punct(t[j], "(");
}

/// Finds the body of the next `capture_frame_into` *definition* at or
/// after `from`: identifier, balanced parameter parens, optional
/// qualifiers, then `{`. Returns true and the [begin, end) token range
/// of the body interior; false when no further definition exists.
bool next_definition_body(const Tokens& t, std::size_t from,
                          std::size_t& body_begin, std::size_t& body_end,
                          std::size_t& next_from) {
  for (std::size_t i = from; i + 1 < t.size(); ++i) {
    if (!ident(t[i], "capture_frame_into") || !punct(t[i + 1], "(")) continue;
    // Balance the parameter list.
    std::size_t j = i + 1;
    int depth = 0;
    for (; j < t.size(); ++j) {
      if (punct(t[j], "(")) ++depth;
      if (punct(t[j], ")") && --depth == 0) break;
    }
    if (j >= t.size()) return false;
    // Skip trailing qualifiers (const, noexcept, override, ...) up to a
    // `{` (definition) or `;` (declaration — not our target).
    std::size_t k = j + 1;
    while (k < t.size() && t[k].kind == TokenKind::kIdentifier) ++k;
    if (k >= t.size() || !punct(t[k], "{")) {
      continue;  // declaration or call site; keep scanning
    }
    // Balance the body braces.
    std::size_t b = k;
    depth = 0;
    for (; b < t.size(); ++b) {
      if (punct(t[b], "{")) ++depth;
      if (punct(t[b], "}") && --depth == 0) break;
    }
    if (b >= t.size()) return false;
    body_begin = k + 1;
    body_end = b;
    next_from = b + 1;
    return true;
  }
  return false;
}

void check_body(const AnalyzedFile& f, std::size_t begin, std::size_t end,
                Findings& out) {
  // The per-pixel accessor surface: SensorPixel's mutating entry points
  // plus the chip's per-pixel view factory. The SoA kernel never touches
  // these; the bank's prepared/batch APIs spell differently on purpose.
  static const std::set<std::string> kAccessorCalls = {
      "pixel", "read_current", "sample", "elapse", "calibrate"};
  static const std::set<std::string> kAllocCalls = {
      "push_back", "emplace_back", "make_unique", "make_shared"};
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = begin; i < end; ++i) {
    std::string what;
    if (t[i].kind == TokenKind::kIdentifier &&
        kAccessorCalls.count(t[i].text) > 0 && i + 1 < end &&
        punct(t[i + 1], "(")) {
      what = "per-pixel accessor call '" + t[i].text +
             "(...)' — use the PixelBank prepared/batch API "
             "(read_current_prepared, quiet_current, droop, "
             "calibrate_pixels) on plane indices";
    } else if (t[i].kind == TokenKind::kIdentifier &&
               kAllocCalls.count(t[i].text) > 0 && call_follows(t, i, end)) {
      what = "heap allocation '" + t[i].text +
             "(...)' — the capture steady state allocates nothing "
             "per frame";
    } else if (ident(t[i], "new")) {
      what = "heap allocation 'new' — the capture steady state "
             "allocates nothing per frame";
    } else if (i > begin && punct(t[i - 1], "::") && ident(t[i], "function")) {
      what = "type-erased std::function — blocks inlining and may "
             "heap-allocate in the hot loop";
    }
    if (what.empty()) continue;
    if (line_has_marker(f.lex, t[i].line, "analyze:allow-hot-loop")) continue;
    out.push_back(Finding{
        f.src.path, t[i].line, "neuro-hot-loop",
        what + " inside capture_frame_into (DESIGN.md §16; escape: "
               "analyze:allow-hot-loop)"});
  }
}

}  // namespace

void rule_neuro_hot_loop(const Tree& tree, Findings& out) {
  for (const AnalyzedFile& f : tree) {
    if (!path_starts_with(f.src.path, "src/neurochip/") ||
        is_header(f.src.path)) {
      continue;
    }
    std::size_t from = 0;
    std::size_t body_begin = 0;
    std::size_t body_end = 0;
    std::size_t next_from = 0;
    while (next_definition_body(f.lex.tokens, from, body_begin, body_end,
                                next_from)) {
      check_body(f, body_begin, body_end, out);
      from = next_from;
    }
  }
}

}  // namespace biosense::analyze
