// Obs instrument naming rules (DESIGN.md §14).
//
// The metrics registry (src/obs/metrics.hpp) keys instruments by name
// string; the macros cache the resolved instrument per call site. Two
// call sites may legitimately share a name *within* a module (one
// logical counter bumped from several paths), but the registry offers
// no protection against a different module reusing the name — the
// counters silently merge — or against one name being registered both
// as a counter and a gauge. Rule `obs-name` enforces:
//
//   * the name argument is a string literal (the macros cache per call
//     site, so a computed name is latched to its first value anyway);
//   * names are lowercase dotted paths: `<prefix>.<instrument>`;
//   * one name, one instrument kind (COUNT xor GAUGE xor OBSERVE xor
//     flight event — the two FLIGHT macros share a kind, since both
//     mint the same event stream into different rings);
//   * one name, one module (src/<module>/) — cross-module reuse merges
//     unrelated instruments;
//   * the prefix is one this module has claimed (table below — the
//     static mirror of the Registry::claim_prefix discipline used for
//     dynamic per-instance names). Adding a module's first instrument
//     means claiming its prefix here, which is the point: the claim
//     becomes reviewable instead of implicit.
#include <map>
#include <set>

#include "rules.hpp"

namespace biosense::analyze {
namespace {

/// prefix -> modules (src/<module>/) allowed to mint literals under it.
/// "host." is claimed twice on purpose: the dnachip host-side retry
/// protocol predates the fleet host layer and the two keep disjoint
/// instrument names (the cross-module duplicate check enforces that).
const std::map<std::string, std::set<std::string>>& claimed_prefixes() {
  static const std::map<std::string, std::set<std::string>> kClaims = {
      {"parallel", {"common"}},  {"channel", {"common"}},
      {"pool", {"common"}},      {"wire", {"core"}},
      {"session", {"core"}},     {"serial", {"dnachip"}},
      {"host", {"dnachip", "host"}},
      {"faults", {"faults", "dnachip", "neurochip"}},
      {"fleet", {"host"}},       {"i2f", {"i2f"}},
      {"neurochip", {"neurochip"}},
  };
  return kClaims;
}

bool well_formed(const std::string& name) {
  if (name.empty() || name.front() == '.' || name.back() == '.') return false;
  bool has_dot = false;
  for (char c : name) {
    if (c == '.') {
      has_dot = true;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
  }
  return has_dot;
}

struct Site {
  const AnalyzedFile* file;
  const MacroCall* call;
  std::string module;
};

/// BIOSENSE_FLIGHT (global ring) and BIOSENSE_FLIGHT_TO (explicit
/// recorder) record the same kind of thing; a name used by both is one
/// event stream, not a kind conflict.
const std::string& macro_kind(const std::string& macro) {
  static const std::string kFlight = "BIOSENSE_FLIGHT";
  if (macro == "BIOSENSE_FLIGHT_TO") return kFlight;
  return macro;
}

}  // namespace

void rule_obs_names(const Tree& tree, Findings& out) {
  std::map<std::string, std::vector<Site>> by_name;

  for (const AnalyzedFile& file : tree) {
    const std::string module = src_module(file.src.path);
    if (module.empty() || module == "obs") continue;  // registry internals
    for (const MacroCall& call : file.facts.macro_calls) {
      if (!call.first_arg_is_literal) {
        out.push_back(Finding{
            file.src.path, call.line, "obs-name",
            call.macro + " name must be a string literal (each call site "
                         "caches its instrument; a computed name latches "
                         "to its first value)"});
        continue;
      }
      by_name[call.literal].push_back(Site{&file, &call, module});
    }
  }

  for (const auto& [name, sites] : by_name) {
    const Site& first = sites.front();
    if (!well_formed(name)) {
      out.push_back(Finding{
          first.file->src.path, first.call->line, "obs-name",
          "instrument name '" + name + "' is not a lowercase dotted path "
              "(expected <prefix>.<instrument>, [a-z0-9_.])"});
      continue;
    }

    // One name, one macro kind.
    for (const Site& site : sites) {
      if (macro_kind(site.call->macro) != macro_kind(first.call->macro)) {
        out.push_back(Finding{
            site.file->src.path, site.call->line, "obs-name",
            "instrument '" + name + "' is registered as " +
                site.call->macro + " here but as " + first.call->macro +
                " at " + first.file->src.path + ":" +
                std::to_string(first.call->line) +
                "; one name, one instrument kind"});
        break;
      }
    }

    // One name, one module.
    for (const Site& site : sites) {
      if (site.module != first.module) {
        out.push_back(Finding{
            site.file->src.path, site.call->line, "obs-name",
            "instrument '" + name + "' is minted by module '" +
                site.module + "' here and by '" + first.module + "' at " +
                first.file->src.path + ":" +
                std::to_string(first.call->line) +
                "; instrument names are unique across modules"});
        break;
      }
    }

    // Claimed prefix.
    const std::string prefix = name.substr(0, name.find('.'));
    const auto claim = claimed_prefixes().find(prefix);
    if (claim == claimed_prefixes().end()) {
      out.push_back(Finding{
          first.file->src.path, first.call->line, "obs-name",
          "instrument prefix '" + prefix + ".' is not claimed by any "
              "module; claim it in tools/analyze/rules_obs.cpp "
              "(claimed_prefixes) so the namespace stays reviewable"});
      continue;
    }
    for (const Site& site : sites) {
      if (claim->second.count(site.module) == 0) {
        out.push_back(Finding{
            site.file->src.path, site.call->line, "obs-name",
            "module '" + site.module + "' mints instrument '" + name +
                "' under prefix '" + prefix + ".' claimed by another "
                "module; use this module's own prefix or extend the claim "
                "in tools/analyze/rules_obs.cpp"});
      }
    }
  }
}

}  // namespace biosense::analyze
