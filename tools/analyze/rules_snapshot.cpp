// Snapshot completeness rules (DESIGN.md §14).
//
// Bit-exact resume (DESIGN.md §13) rests on a convention no compiler
// checks: every class with save_state/load_state hooks serializes all of
// its evolving state, and the two hooks walk the same field list. These
// rules turn the convention into findings:
//
//   snapshot-pair      a class defining one hook defines both.
//   snapshot-coverage  every declared data member is referenced in BOTH
//                      hooks, or carries `// analyze:transient <reason>`
//                      on its declaration. A transient annotation on a
//                      member that *is* fully serialized is also flagged
//                      (stale annotations rot the audit trail).
//   snapshot-mirror    the sequence of StateWriter operations in
//                      save_state equals the sequence of StateReader
//                      operations in load_state, in order and width
//                      (u8/u16/u32/u64/i32/i64/b/f64/rng/vec_f64/
//                      vec_u64/bytes), with nested x.save_state(w) /
//                      x.load_state(r) hooks and save/load callback
//                      pairs matched positionally.
//
// Cross-file by construction: member lists come from the class body
// (header), hook bodies from wherever they are defined (often the .cpp).
#include <algorithm>
#include <map>
#include <set>

#include "rules.hpp"

namespace biosense::analyze {
namespace {

const char* const kTransientMarker = "analyze:transient";

bool is_width_op(const std::string& name) {
  static const std::set<std::string> kOps = {
      "u8",  "u16", "u32",     "u64",     "i32",   "i64",
      "b",   "f64", "vec_f64", "vec_u64", "bytes", "rng"};
  return kOps.count(name) > 0;
}

/// Replaces save/load/read/write naming halves with a placeholder so a
/// `save_item` callback in save_state pairs with `load_item` in
/// load_state.
std::string normalize_call_name(std::string name) {
  static const std::pair<const char*, const char*> kPairs[] = {
      {"save", "x"}, {"load", "x"}, {"write", "x"}, {"read", "x"},
      {"Save", "X"}, {"Load", "X"}, {"Write", "X"}, {"Read", "X"},
      {"Writer", "X"}, {"Reader", "X"},
  };
  for (const auto& [from, to] : kPairs) {
    const std::string needle(from);
    std::size_t pos = 0;
    while ((pos = name.find(needle, pos)) != std::string::npos) {
      name.replace(pos, needle.size(), to);
      pos += 1;
    }
  }
  return name;
}

struct HookBody {
  const AnalyzedFile* file = nullptr;
  TokenRange params;
  TokenRange body;
  int line = 0;
  bool found = false;
};

struct Op {
  std::string name;  // width op, "nested", or "call:<normalized>"
  int line = 0;
};

/// The parameter of StateWriter/StateReader type inside a param range.
std::string cursor_param(const AnalyzedFile& file, TokenRange params) {
  const auto& tokens = file.lex.tokens;
  for (std::size_t i = params.begin; i < params.end && i < tokens.size();
       ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    if (tokens[i].text != "StateWriter" && tokens[i].text != "StateReader") {
      continue;
    }
    for (std::size_t j = i + 1; j < params.end; ++j) {
      if (tokens[j].kind == TokenKind::kIdentifier) return tokens[j].text;
      if (tokens[j].text == ",") break;
    }
  }
  return std::string();
}

/// True when `cursor` appears as a top-level argument of the call whose
/// '(' is at `open` (depth 1 only — deeper occurrences belong to inner
/// call sites that are visited on their own).
bool args_contain_cursor(const std::vector<Token>& tokens, std::size_t open,
                         std::size_t close, const std::string& cursor) {
  int depth = 0;
  for (std::size_t i = open; i < close; ++i) {
    const Token& t = tokens[i];
    if (t.kind == TokenKind::kPunct &&
        (t.text == "(" || t.text == "[" || t.text == "{")) {
      ++depth;
      continue;
    }
    if (t.kind == TokenKind::kPunct &&
        (t.text == ")" || t.text == "]" || t.text == "}")) {
      --depth;
      continue;
    }
    if (depth == 1 && t.kind == TokenKind::kIdentifier && t.text == cursor) {
      return true;
    }
  }
  return false;
}

std::vector<Op> extract_ops(const AnalyzedFile& file, TokenRange body,
                            const std::string& cursor) {
  const auto& tokens = file.lex.tokens;
  std::vector<Op> ops;
  if (cursor.empty()) return ops;
  for (std::size_t i = body.begin; i < body.end && i + 1 < tokens.size();
       ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier) continue;
    if (tokens[i + 1].kind != TokenKind::kPunct || tokens[i + 1].text != "(") {
      continue;
    }
    const std::string& fn = tokens[i].text;
    // Control flow with the cursor inside its condition is not a payload
    // op (`if (!r.ok()) return;`); the cursor-receiver calls inside the
    // parens are visited on their own.
    static const std::set<std::string> kKeywords = {"if", "while", "for",
                                                    "switch", "return"};
    if (kKeywords.count(fn) > 0) continue;
    const bool cursor_receiver =
        i >= 2 && tokens[i - 1].kind == TokenKind::kPunct &&
        (tokens[i - 1].text == "." || tokens[i - 1].text == "->") &&
        tokens[i - 2].kind == TokenKind::kIdentifier &&
        tokens[i - 2].text == cursor;
    if (cursor_receiver) {
      if (is_width_op(fn)) {
        ops.push_back(Op{fn, tokens[i].line});
      }
      // Queries (ok/exhausted/fail/...) are control flow, not payload.
      continue;
    }
    const std::size_t close =
        skip_balanced(tokens, i + 1, "(", ")");
    if (!args_contain_cursor(tokens, i + 1, close, cursor)) continue;
    if (fn == "save_state" || fn == "load_state") {
      ops.push_back(Op{"nested", tokens[i].line});
    } else {
      ops.push_back(Op{"call:" + normalize_call_name(fn), tokens[i].line});
    }
  }
  return ops;
}

bool body_references(const AnalyzedFile& file, TokenRange body,
                     const std::string& name) {
  const auto& tokens = file.lex.tokens;
  for (std::size_t i = body.begin; i < body.end && i < tokens.size(); ++i) {
    if (tokens[i].kind == TokenKind::kIdentifier && tokens[i].text == name) {
      return true;
    }
  }
  return false;
}

/// A member's transient annotation state on its declaration lines.
enum class Transient { kAbsent, kBare, kWithReason };

bool line_has_tokens(const AnalyzedFile& file, int line) {
  return std::any_of(file.lex.tokens.begin(), file.lex.tokens.end(),
                     [line](const Token& t) { return t.line == line; });
}

Transient transient_marker(const AnalyzedFile& file, const MemberDecl& m) {
  // The marker may sit on the declaration's own lines, or on an
  // immediately preceding comment-only line.
  std::vector<int> lines;
  for (int line = m.decl_line; line <= std::max(m.end_line, m.decl_line);
       ++line) {
    lines.push_back(line);
  }
  if (m.decl_line > 1 && !line_has_tokens(file, m.decl_line - 1)) {
    lines.push_back(m.decl_line - 1);
  }
  for (int line : lines) {
    if (!line_has_marker(file.lex, line, kTransientMarker)) continue;
    const std::string reason = marker_payload(file.lex, line, kTransientMarker);
    // A reason clause needs actual words, not trailing punctuation.
    int word_chars = 0;
    for (char c : reason) {
      if (std::isalnum(static_cast<unsigned char>(c))) ++word_chars;
    }
    return (word_chars >= 3) ? Transient::kWithReason : Transient::kBare;
  }
  return Transient::kAbsent;
}

}  // namespace

void rule_snapshot(const Tree& tree, Findings& out) {
  // Index out-of-line hook definitions by class name.
  struct OutDef {
    const AnalyzedFile* file;
    const OutOfLineDef* def;
  };
  std::map<std::string, std::vector<OutDef>> out_of_line;
  for (const AnalyzedFile& file : tree) {
    for (const OutOfLineDef& def : file.facts.out_of_line) {
      if (def.method == "save_state" || def.method == "load_state") {
        out_of_line[def.class_name].push_back(OutDef{&file, &def});
      }
    }
  }

  for (const AnalyzedFile& file : tree) {
    if (!path_starts_with(file.src.path, "src/")) continue;
    for (const ClassDecl& cls : file.facts.classes) {
      HookBody save, load;
      bool declares_save = false, declares_load = false;
      for (const MethodDef& m : cls.methods) {
        if (m.name != "save_state" && m.name != "load_state") continue;
        HookBody& slot = (m.name == "save_state") ? save : load;
        (m.name == "save_state" ? declares_save : declares_load) = true;
        if (m.has_body) {
          slot = HookBody{&file, m.params, m.body, m.line, true};
        } else {
          slot.line = m.line;
        }
      }
      if (!declares_save && !declares_load) continue;

      // Out-of-line bodies for hooks declared without one.
      const auto it = out_of_line.find(cls.name);
      if (it != out_of_line.end()) {
        for (const OutDef& od : it->second) {
          HookBody& slot = (od.def->method == "save_state") ? save : load;
          if (!slot.found) {
            slot = HookBody{od.file, od.def->params, od.def->body,
                            od.def->line, true};
          }
        }
      }

      if (declares_save != declares_load) {
        out.push_back(Finding{
            file.src.path, cls.line, "snapshot-pair",
            "class '" + cls.name + "' declares " +
                (declares_save ? "save_state" : "load_state") +
                " but not its counterpart; snapshot hooks come in pairs"});
        continue;
      }
      if (!save.found || !load.found) {
        // Declared but no definition visible anywhere (should not happen
        // in-tree; the linker would also complain).
        continue;
      }

      // --- snapshot-coverage -------------------------------------------------
      for (const MemberDecl& m : cls.members) {
        const bool in_save = body_references(*save.file, save.body, m.name);
        const bool in_load = body_references(*load.file, load.body, m.name);
        const Transient marker = transient_marker(file, m);
        if (in_save && in_load) {
          if (marker != Transient::kAbsent) {
            out.push_back(Finding{
                file.src.path, m.line, "snapshot-coverage",
                "member '" + m.name + "' of '" + cls.name +
                    "' is marked analyze:transient but is referenced by "
                    "both hooks; drop the stale annotation"});
          }
          continue;
        }
        if (marker == Transient::kWithReason) continue;
        if (marker == Transient::kBare) {
          out.push_back(Finding{
              file.src.path, m.line, "snapshot-coverage",
              "member '" + m.name + "' of '" + cls.name +
                  "' has a bare analyze:transient; add a one-clause reason "
                  "(e.g. \"analyze:transient - frozen config\")"});
          continue;
        }
        const char* where = (!in_save && !in_load) ? "save_state or load_state"
                            : (!in_save ? "save_state" : "load_state");
        out.push_back(Finding{
            file.src.path, m.line, "snapshot-coverage",
            "member '" + m.name + "' of '" + cls.name +
                "' is not referenced in " + std::string(where) +
                "; serialize it or annotate '// analyze:transient <why>'"});
      }

      // --- snapshot-mirror ---------------------------------------------------
      const std::string wparam = cursor_param(*save.file, save.params);
      const std::string rparam = cursor_param(*load.file, load.params);
      const std::vector<Op> writes = extract_ops(*save.file, save.body, wparam);
      const std::vector<Op> reads = extract_ops(*load.file, load.body, rparam);
      const std::size_t n = std::min(writes.size(), reads.size());
      for (std::size_t k = 0; k < n; ++k) {
        if (writes[k].name == reads[k].name) continue;
        out.push_back(Finding{
            save.file->src.path, writes[k].line, "snapshot-mirror",
            "'" + cls.name + "': save_state op #" + std::to_string(k + 1) +
                " is '" + writes[k].name + "' but load_state reads '" +
                reads[k].name + "' (" + load.file->src.path + ":" +
                std::to_string(reads[k].line) +
                "); write and read sequences must mirror in order and "
                "width"});
        break;  // one desync poisons every later position
      }
      if (writes.size() != reads.size()) {
        const bool more_writes = writes.size() > reads.size();
        const Op& extra =
            more_writes ? writes[reads.size()] : reads[writes.size()];
        const HookBody& h = more_writes ? save : load;
        out.push_back(Finding{
            h.file->src.path, extra.line, "snapshot-mirror",
            "'" + cls.name + "': save_state has " +
                std::to_string(writes.size()) + " cursor ops but load_state "
                "has " + std::to_string(reads.size()) +
                "; first unmatched op '" + extra.name + "' in " +
                (more_writes ? "save_state" : "load_state")});
      }
    }
  }
}

}  // namespace biosense::analyze
