// Minimal C++ lexer for biosense-analyze (DESIGN.md §14).
//
// Produces the token stream the declaration scanner and the rule engine
// work on: identifiers, numbers, string/char literals and punctuation,
// each tagged with its 1-based source line. Comments are not tokens —
// they are collected into a side list so rules can look up escape
// markers (`lint:allow-*`, `analyze:transient`) by line. Preprocessor
// directives (including backslash-continued macro definitions) are
// swallowed entirely: the analyzer reasons about declarations and call
// sites, never about macro bodies.
//
// This is deliberately not a conforming lexer: no trigraphs, no
// universal-character-names, no digit separators beyond ', and `>>` is
// one token (the scanner splits it when closing nested template
// argument lists). It is exact for the subset of C++ this repo writes,
// and the fixture corpus under tests/analyze/fixtures/ pins that.
#pragma once

#include <string>
#include <vector>

namespace biosense::analyze {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords alike
  kNumber,
  kString,  // "..." including raw strings; text excludes quotes
  kChar,    // '...'
  kPunct,   // longest-match punctuation, e.g. "::", "->", "<<", ">>"
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;
};

/// One comment (`//...` or `/*...*/`). `line` is the line the comment
/// starts on; `end_line` the line it ends on (equal for line comments).
struct Comment {
  std::string text;  // without the // or /* */ delimiters
  int line = 0;
  int end_line = 0;
};

struct LexedFile {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes `content`. Never fails: unrecognized bytes become 1-char
/// punctuation tokens, unterminated literals run to end of line/file.
LexedFile lex(const std::string& content);

/// True when some comment overlapping `line` contains `marker` as a
/// substring. Used for escape annotations tied to the flagged line.
bool line_has_marker(const LexedFile& file, int line, const std::string& marker);

/// The comment text following `marker` on `line` (empty when the marker
/// is absent or bare). Lets rules require a reason clause after
/// `analyze:transient`.
std::string marker_payload(const LexedFile& file, int line,
                           const std::string& marker);

}  // namespace biosense::analyze
