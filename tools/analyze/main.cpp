// biosense-analyze CLI (DESIGN.md §14).
//
// Usage:
//   biosense-analyze --root DIR    analyze the tree rooted at DIR
//   biosense-analyze --list-rules  print the rule catalogue
//
// Exit status: 0 = no findings, 1 = findings printed, 2 = usage/IO error.
#include <cstdio>
#include <exception>
#include <string>

#include "analyzer.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --root DIR | --list-rules\n"
               "  --root DIR    analyze src/, tests/, bench/, examples/,\n"
               "                tools/ under DIR (fixture corpus excluded)\n"
               "  --list-rules  print the rule catalogue and exit\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else {
      return usage(argv[0]);
    }
  }

  if (list_rules) {
    for (const auto& [name, description] :
         biosense::analyze::rule_catalogue()) {
      std::printf("%-22s %s\n", name.c_str(), description.c_str());
    }
    return 0;
  }
  if (root.empty()) return usage(argv[0]);

  try {
    const auto files = biosense::analyze::load_tree(root);
    const auto findings = biosense::analyze::analyze(files);
    for (const auto& f : findings) {
      std::printf("%s\n", biosense::analyze::format_finding(f).c_str());
    }
    if (!findings.empty()) {
      std::fprintf(stderr, "analyze: %zu finding(s) in %zu files\n",
                   findings.size(), files.size());
      return 1;
    }
    std::printf("analyze: %zu files, all invariants hold\n", files.size());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
