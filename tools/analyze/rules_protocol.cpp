// Protocol schema consistency rules (DESIGN.md §14).
//
// The fleet protocol (DESIGN.md §12) keeps three hand-maintained
// surfaces in agreement: the `HostCommand` enum in protocol.hpp, the
// dispatcher schema table registered in FleetServer::register_handlers,
// and the kCap* capability bits. These rules check the agreement
// whole-program:
//
//   proto-schema  every HostCommand enumerator has exactly one schema
//                 entry; entry min_version lies in [kProtocolVersionMin,
//                 kProtocolVersionCurrent]; no two enumerators share a
//                 wire value.
//   proto-caps    every kCap* bit declared in src/host/ is referenced
//                 by server code (an unreferenced bit is either dead or
//                 — worse — silently unimplemented advertised surface).
//   proto-names   host_command_name / host_status_name switch over
//                 every enumerator (a missed case returns the fallback
//                 string and poisons diagnostics).
//
// The rules activate only when a HostCommand enum exists in the tree,
// so fixture corpora exercise them with miniature protocol files under
// the same src/host/ paths.
#include <map>
#include <set>

#include "rules.hpp"

namespace biosense::analyze {
namespace {

struct EnumSite {
  const AnalyzedFile* file = nullptr;
  const EnumDecl* decl = nullptr;
};

EnumSite find_enum(const Tree& tree, const std::string& name) {
  for (const AnalyzedFile& file : tree) {
    if (!path_starts_with(file.src.path, "src/host/")) continue;
    for (const EnumDecl& e : file.facts.enums) {
      if (e.name == name) return EnumSite{&file, &e};
    }
  }
  return EnumSite{};
}

struct SchemaEntry {
  std::string enumerator;
  int line = 0;
  std::optional<std::int64_t> min_version;
};

/// Schema entries = `HostCommand::kX, <int>` occurrences inside the
/// body of register_handlers.
std::vector<SchemaEntry> collect_entries(const Tree& tree,
                                         const AnalyzedFile** where) {
  for (const AnalyzedFile& file : tree) {
    if (!path_starts_with(file.src.path, "src/host/")) continue;
    const TokenRange body = find_function_body(file.lex, "register_handlers");
    if (body.empty()) continue;
    *where = &file;
    std::vector<SchemaEntry> entries;
    const auto& tokens = file.lex.tokens;
    for (std::size_t i = body.begin; i + 2 < body.end; ++i) {
      if (tokens[i].kind != TokenKind::kIdentifier ||
          tokens[i].text != "HostCommand") {
        continue;
      }
      if (tokens[i + 1].text != "::" ||
          tokens[i + 2].kind != TokenKind::kIdentifier) {
        continue;
      }
      SchemaEntry entry;
      entry.enumerator = tokens[i + 2].text;
      entry.line = tokens[i + 2].line;
      if (i + 4 < body.end && tokens[i + 3].text == "," &&
          tokens[i + 4].kind == TokenKind::kNumber) {
        char* end = nullptr;
        entry.min_version = std::strtoll(tokens[i + 4].text.c_str(), &end, 0);
      }
      entries.push_back(std::move(entry));
    }
    return entries;
  }
  return {};
}

std::optional<std::int64_t> find_const(const Tree& tree,
                                       const std::string& name) {
  for (const AnalyzedFile& file : tree) {
    if (!path_starts_with(file.src.path, "src/host/")) continue;
    for (const ConstInt& c : file.facts.const_ints) {
      if (c.name == name) return c.value;
    }
  }
  return std::nullopt;
}

void check_name_coverage(const Tree& tree, const EnumSite& site,
                         const std::string& fn, Findings& out) {
  if (site.decl == nullptr) return;
  for (const AnalyzedFile& file : tree) {
    if (!path_starts_with(file.src.path, "src/host/")) continue;
    const TokenRange body = find_function_body(file.lex, fn);
    if (body.empty()) continue;
    std::set<std::string> mentioned;
    for (std::size_t i = body.begin;
         i < body.end && i < file.lex.tokens.size(); ++i) {
      if (file.lex.tokens[i].kind == TokenKind::kIdentifier) {
        mentioned.insert(file.lex.tokens[i].text);
      }
    }
    for (const Enumerator& e : site.decl->enumerators) {
      if (mentioned.count(e.name) == 0) {
        out.push_back(Finding{
            site.file->src.path, e.line, "proto-names",
            "enumerator '" + e.name + "' of '" + site.decl->name +
                "' is not handled by " + fn + "() (" + file.src.path +
                "); diagnostics would fall through to the default"});
      }
    }
    return;
  }
}

}  // namespace

void rule_protocol(const Tree& tree, Findings& out) {
  const EnumSite commands = find_enum(tree, "HostCommand");
  if (commands.decl == nullptr) return;  // no protocol in this tree

  // Duplicate wire values inside the enum.
  std::map<std::int64_t, const Enumerator*> by_value;
  for (const Enumerator& e : commands.decl->enumerators) {
    if (!e.value) continue;
    const auto [it, inserted] = by_value.emplace(*e.value, &e);
    if (!inserted) {
      out.push_back(Finding{
          commands.file->src.path, e.line, "proto-schema",
          "enumerator '" + e.name + "' reuses wire value " +
              std::to_string(*e.value) + " of '" + it->second->name +
              "'; command ids must be unique"});
    }
  }

  const AnalyzedFile* table_file = nullptr;
  const std::vector<SchemaEntry> entries = collect_entries(tree, &table_file);
  if (table_file == nullptr) {
    out.push_back(Finding{
        commands.file->src.path, commands.decl->line, "proto-schema",
        "HostCommand is declared but no register_handlers() schema table "
        "was found under src/host/"});
    return;
  }

  std::set<std::string> known;
  for (const Enumerator& e : commands.decl->enumerators) known.insert(e.name);

  std::map<std::string, std::vector<int>> entry_count;
  for (const SchemaEntry& entry : entries) {
    entry_count[entry.enumerator].push_back(entry.line);
    if (known.count(entry.enumerator) == 0) {
      out.push_back(Finding{
          table_file->src.path, entry.line, "proto-schema",
          "schema entry references unknown command '" + entry.enumerator +
              "' (not an enumerator of HostCommand)"});
    }
  }
  for (const auto& [name, lines] : entry_count) {
    if (lines.size() > 1) {
      out.push_back(Finding{
          table_file->src.path, lines[1], "proto-schema",
          "command '" + name + "' has " + std::to_string(lines.size()) +
              " schema entries; exactly one is required"});
    }
  }
  for (const Enumerator& e : commands.decl->enumerators) {
    if (entry_count.count(e.name) == 0) {
      out.push_back(Finding{
          commands.file->src.path, e.line, "proto-schema",
          "command '" + e.name +
              "' has no dispatcher schema entry in register_handlers()"});
    }
  }

  const auto vmin = find_const(tree, "kProtocolVersionMin");
  const auto vcur = find_const(tree, "kProtocolVersionCurrent");
  if (vmin && vcur) {
    for (const SchemaEntry& entry : entries) {
      if (!entry.min_version) continue;
      if (*entry.min_version < *vmin || *entry.min_version > *vcur) {
        out.push_back(Finding{
            table_file->src.path, entry.line, "proto-schema",
            "schema entry for '" + entry.enumerator + "' declares "
                "min_version " + std::to_string(*entry.min_version) +
                " outside [kProtocolVersionMin=" + std::to_string(*vmin) +
                ", kProtocolVersionCurrent=" + std::to_string(*vcur) + "]"});
      }
    }
  } else {
    out.push_back(Finding{
        commands.file->src.path, commands.decl->line, "proto-schema",
        "kProtocolVersionMin/kProtocolVersionCurrent not found as integer "
        "constants under src/host/; cannot validate the version window"});
  }

  // --- proto-caps ------------------------------------------------------------
  for (const AnalyzedFile& file : tree) {
    if (!path_starts_with(file.src.path, "src/host/") ||
        !is_header(file.src.path)) {
      continue;
    }
    for (const ConstInt& c : file.facts.const_ints) {
      if (c.name.rfind("kCap", 0) != 0) continue;
      bool referenced = false;
      for (const AnalyzedFile& user : tree) {
        if (!path_starts_with(user.src.path, "src/host/")) continue;
        for (const Token& t : user.lex.tokens) {
          if (t.kind != TokenKind::kIdentifier || t.text != c.name) continue;
          if (&user == &file && t.line == c.line) continue;  // the decl
          referenced = true;
          break;
        }
        if (referenced) break;
      }
      if (!referenced) {
        out.push_back(Finding{
            file.src.path, c.line, "proto-caps",
            "capability bit '" + c.name +
                "' is declared but never referenced by server code; wire "
                "it into a schema entry/handler or delete it"});
      }
    }
  }

  // --- proto-names -----------------------------------------------------------
  check_name_coverage(tree, commands, "host_command_name", out);
  check_name_coverage(tree, find_enum(tree, "HostStatus"), "host_status_name",
                      out);
}

}  // namespace biosense::analyze
