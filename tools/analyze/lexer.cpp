#include "lexer.hpp"

#include <cctype>
#include <cstddef>

namespace biosense::analyze {
namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-char punctuation, longest first within each leading char.
const char* const kPuncts[] = {
    "<<=", ">>=", "...", "->*", "::", "->", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "##",
};

}  // namespace

LexedFile lex(const std::string& content) {
  LexedFile out;
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;

  auto push = [&](TokenKind kind, std::string text, int at) {
    out.tokens.push_back(Token{kind, std::move(text), at});
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\f' || c == '\v') {
      ++i;
      continue;
    }

    // Preprocessor directive: swallow the whole logical line, including
    // backslash continuations (macro definitions are invisible to rules).
    if (c == '#') {
      bool at_line_start = true;
      for (std::size_t j = i; j-- > 0;) {
        if (content[j] == '\n') break;
        if (content[j] != ' ' && content[j] != '\t') {
          at_line_start = false;
          break;
        }
      }
      if (at_line_start) {
        while (i < n) {
          if (content[i] == '\n') {
            // A backslash (optionally followed by \r) continues the line.
            std::size_t k = i;
            bool continued = false;
            while (k > 0) {
              const char p = content[k - 1];
              if (p == '\r') {
                --k;
                continue;
              }
              continued = (p == '\\');
              break;
            }
            ++line;
            ++i;
            if (!continued) break;
            continue;
          }
          ++i;
        }
        continue;
      }
      // '#' mid-line (token paste in plain code — should not happen).
      push(TokenKind::kPunct, "#", line);
      ++i;
      continue;
    }

    // Comments.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      const int start = line;
      i += 2;
      std::string text;
      while (i < n && content[i] != '\n') text.push_back(content[i++]);
      out.comments.push_back(Comment{std::move(text), start, start});
      continue;
    }
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      const int start = line;
      i += 2;
      std::string text;
      while (i + 1 < n && !(content[i] == '*' && content[i + 1] == '/')) {
        if (content[i] == '\n') ++line;
        text.push_back(content[i++]);
      }
      i = (i + 1 < n) ? i + 2 : n;
      out.comments.push_back(Comment{std::move(text), start, line});
      continue;
    }

    // Raw string literal R"delim(...)delim".
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      std::size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(' && delim.size() <= 16) {
        delim.push_back(content[j++]);
      }
      if (j < n && content[j] == '(') {
        const std::string close = ")" + delim + "\"";
        const std::size_t end = content.find(close, j + 1);
        const int start = line;
        std::string text = content.substr(
            j + 1, (end == std::string::npos ? n : end) - (j + 1));
        for (char t : text) {
          if (t == '\n') ++line;
        }
        push(TokenKind::kString, std::move(text), start);
        i = (end == std::string::npos) ? n : end + close.size();
        continue;
      }
      // 'R' not starting a raw string: fall through as identifier below.
    }

    // String / char literals (with escapes; unterminated runs to newline).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start = line;
      std::string text;
      ++i;
      while (i < n && content[i] != quote && content[i] != '\n') {
        if (content[i] == '\\' && i + 1 < n) {
          text.push_back(content[i]);
          text.push_back(content[i + 1]);
          i += 2;
          continue;
        }
        text.push_back(content[i++]);
      }
      if (i < n && content[i] == quote) ++i;
      push(quote == '"' ? TokenKind::kString : TokenKind::kChar,
           std::move(text), start);
      continue;
    }

    // Numbers (generous: hex, floats, exponents, suffixes, ' separators).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      std::string text;
      while (i < n) {
        const char d = content[i];
        if (ident_char(d) || d == '.' || d == '\'') {
          text.push_back(d);
          ++i;
          // Exponent signs: 1e-3, 0x1p+2.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && i < n &&
              (content[i] == '+' || content[i] == '-') && text.size() > 1 &&
              (std::isdigit(static_cast<unsigned char>(text[0])) ||
               text[0] == '.')) {
            text.push_back(content[i++]);
          }
          continue;
        }
        break;
      }
      push(TokenKind::kNumber, std::move(text), line);
      continue;
    }

    if (ident_start(c)) {
      std::string text;
      while (i < n && ident_char(content[i])) text.push_back(content[i++]);
      push(TokenKind::kIdentifier, std::move(text), line);
      continue;
    }

    // Punctuation, longest match first.
    bool matched = false;
    for (const char* p : kPuncts) {
      const std::size_t len = std::char_traits<char>::length(p);
      if (content.compare(i, len, p) == 0) {
        push(TokenKind::kPunct, p, line);
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      push(TokenKind::kPunct, std::string(1, c), line);
      ++i;
    }
  }
  return out;
}

bool line_has_marker(const LexedFile& file, int line,
                     const std::string& marker) {
  for (const Comment& c : file.comments) {
    if (c.line <= line && line <= c.end_line &&
        c.text.find(marker) != std::string::npos) {
      return true;
    }
  }
  return false;
}

std::string marker_payload(const LexedFile& file, int line,
                           const std::string& marker) {
  for (const Comment& c : file.comments) {
    if (c.line > line || line > c.end_line) continue;
    const std::size_t pos = c.text.find(marker);
    if (pos == std::string::npos) continue;
    std::string rest = c.text.substr(pos + marker.size());
    // Trim separators a reason clause may open with.
    std::size_t k = 0;
    while (k < rest.size() &&
           (rest[k] == ' ' || rest[k] == ':' || rest[k] == '-' ||
            rest[k] == '(' || static_cast<unsigned char>(rest[k]) >= 0x80)) {
      ++k;
    }
    return rest.substr(k);
  }
  return std::string();
}

}  // namespace biosense::analyze
