#include "scanner.hpp"

#include <algorithm>
#include <cstdlib>

namespace biosense::analyze {
namespace {

using Tokens = std::vector<Token>;

bool is_ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}
bool is_punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool is_any(const std::string& s, std::initializer_list<const char*> list) {
  return std::any_of(list.begin(), list.end(),
                     [&](const char* x) { return s == x; });
}

/// Parses an integer literal with optional 0x prefix and u/l suffixes.
std::optional<std::int64_t> parse_int(const std::string& text) {
  std::string digits = text;
  while (!digits.empty()) {
    const char c = digits.back();
    if (c == 'u' || c == 'U' || c == 'l' || c == 'L') {
      digits.pop_back();
    } else {
      break;
    }
  }
  if (digits.empty()) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(digits.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return static_cast<std::int64_t>(v);
}

/// Evaluates the tiny constant-expression subset the rules need:
/// `N`, `(N)`, `A << B`. Anything else is nullopt.
std::optional<std::int64_t> eval_expr(const Tokens& tokens, std::size_t begin,
                                      std::size_t end) {
  while (end > begin && is_punct(tokens[begin], "(") &&
         is_punct(tokens[end - 1], ")")) {
    ++begin;
    --end;
  }
  if (end == begin) return std::nullopt;
  if (end == begin + 1 && tokens[begin].kind == TokenKind::kNumber) {
    return parse_int(tokens[begin].text);
  }
  if (end == begin + 3 && tokens[begin].kind == TokenKind::kNumber &&
      is_punct(tokens[begin + 1], "<<") &&
      tokens[begin + 2].kind == TokenKind::kNumber) {
    const auto a = parse_int(tokens[begin].text);
    const auto b = parse_int(tokens[begin + 2].text);
    if (a && b && *b >= 0 && *b < 63) return *a << *b;
  }
  return std::nullopt;
}

class Scanner {
 public:
  Scanner(const LexedFile& file, const std::vector<std::string>& macros)
      : tokens_(file.tokens), macros_(macros) {}

  FileFacts run() {
    scan_macro_calls();
    scan_namespace_scope(0, tokens_.size());
    return std::move(facts_);
  }

 private:
  const Tokens& tokens_;
  const std::vector<std::string>& macros_;
  FileFacts facts_;

  void scan_macro_calls() {
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i].kind != TokenKind::kIdentifier) continue;
      if (std::find(macros_.begin(), macros_.end(), tokens_[i].text) ==
          macros_.end()) {
        continue;
      }
      if (!is_punct(tokens_[i + 1], "(")) continue;
      MacroCall call;
      call.macro = tokens_[i].text;
      call.line = tokens_[i].line;
      // First argument: tokens up to a top-level ',' or ')'.
      std::size_t j = i + 2;
      int depth = 0;
      bool all_strings = true;
      std::size_t parts = 0;
      while (j < tokens_.size()) {
        const Token& t = tokens_[j];
        if (is_punct(t, "(") || is_punct(t, "[") || is_punct(t, "{")) ++depth;
        if (is_punct(t, ")") || is_punct(t, "]") || is_punct(t, "}")) {
          if (depth == 0) break;
          --depth;
        }
        if (depth == 0 && is_punct(t, ",")) break;
        if (t.kind == TokenKind::kString) {
          call.literal += t.text;
          ++parts;
        } else {
          all_strings = false;
        }
        ++j;
      }
      call.first_arg_is_literal = all_strings && parts > 0;
      facts_.macro_calls.push_back(std::move(call));
    }
  }

  /// Skips one statement starting at `i`: balances (), {}, stops after the
  /// terminating ';' or after a top-level {...} body (function/class).
  std::size_t skip_statement(std::size_t i, std::size_t end) {
    bool saw_parens = false;
    while (i < end) {
      const Token& t = tokens_[i];
      if (is_punct(t, "(")) {
        i = skip_balanced(tokens_, i, "(", ")");
        saw_parens = true;
        continue;
      }
      if (is_punct(t, "{")) {
        i = skip_balanced(tokens_, i, "{", "}");
        // A function body ends the statement; an initializer/type body is
        // followed by declarators and the ';' closes it.
        if (saw_parens) {
          if (i < end && is_punct(tokens_[i], ";")) ++i;
          return i;
        }
        continue;
      }
      if (is_punct(t, ";")) return i + 1;
      ++i;
    }
    return end;
  }

  void scan_namespace_scope(std::size_t i, std::size_t end) {
    while (i < end) {
      const Token& t = tokens_[i];
      if (is_ident(t, "namespace")) {
        ++i;
        while (i < end && !is_punct(tokens_[i], "{") &&
               !is_punct(tokens_[i], ";")) {
          ++i;
        }
        if (i < end && is_punct(tokens_[i], "{")) ++i;  // transparent
        continue;
      }
      if (is_ident(t, "template")) {
        i = skip_template_header(i + 1, end);
        continue;
      }
      if (is_ident(t, "class") || is_ident(t, "struct") ||
          is_ident(t, "union")) {
        i = parse_class(i, end);
        continue;
      }
      if (is_ident(t, "enum")) {
        i = parse_enum(i, end);
        continue;
      }
      if (is_punct(t, "}")) {
        ++i;  // closing a namespace
        continue;
      }
      i = parse_namespace_statement(i, end);
    }
  }

  std::size_t skip_template_header(std::size_t i, std::size_t end) {
    if (i < end && is_punct(tokens_[i], "<")) {
      int depth = 0;
      while (i < end) {
        const Token& t = tokens_[i];
        if (is_punct(t, "<")) ++depth;
        if (is_punct(t, ">")) --depth;
        if (is_punct(t, ">>")) depth -= 2;
        ++i;
        if (depth <= 0) break;
      }
    }
    return i;
  }

  /// A namespace-scope statement: a declaration, a constant, a free
  /// function or an out-of-line method definition.
  std::size_t parse_namespace_statement(std::size_t i, std::size_t end) {
    const std::size_t stmt_begin = i;
    bool saw_constexpr = false;
    std::string last_ident;
    std::size_t last_ident_pos = 0;
    while (i < end) {
      const Token& t = tokens_[i];
      if (is_punct(t, ";")) {
        ++i;
        break;
      }
      if (is_ident(t, "constexpr")) saw_constexpr = true;
      if (t.kind == TokenKind::kIdentifier) {
        last_ident = t.text;
        last_ident_pos = i;
      }
      if (is_punct(t, "=") && saw_constexpr && !last_ident.empty()) {
        // inline constexpr T kName = <expr>;
        std::size_t j = i + 1;
        while (j < end && !is_punct(tokens_[j], ";")) ++j;
        if (const auto v = eval_expr(tokens_, i + 1, j)) {
          facts_.const_ints.push_back(
              ConstInt{last_ident, tokens_[last_ident_pos].line, *v});
        }
        return (j < end) ? j + 1 : end;
      }
      if (is_punct(t, "(")) {
        // Candidate function: name is the identifier right before the
        // parens; a preceding `::` makes it an out-of-line method.
        const std::size_t params_begin = i + 1;
        i = skip_balanced(tokens_, i, "(", ")");
        const std::size_t params_end = (i == tokens_.size()) ? i : i - 1;
        // Skip trailing qualifiers / constructor init list up to body.
        std::size_t j = i;
        while (j < end && !is_punct(tokens_[j], "{") &&
               !is_punct(tokens_[j], ";") && !is_punct(tokens_[j], "=")) {
          if (is_punct(tokens_[j], "(")) {
            j = skip_balanced(tokens_, j, "(", ")");
            continue;
          }
          ++j;
        }
        if (j < end && is_punct(tokens_[j], "{")) {
          const std::size_t body_begin = j + 1;
          const std::size_t body_close = skip_balanced(tokens_, j, "{", "}");
          const std::size_t body_end =
              (body_close == tokens_.size()) ? body_close : body_close - 1;
          if (last_ident_pos >= stmt_begin + 2 &&
              is_punct(tokens_[last_ident_pos - 1], "::") &&
              tokens_[last_ident_pos - 2].kind == TokenKind::kIdentifier) {
            OutOfLineDef def;
            def.class_name = tokens_[last_ident_pos - 2].text;
            def.method = last_ident;
            def.line = tokens_[last_ident_pos].line;
            def.params = TokenRange{params_begin, params_end};
            def.body = TokenRange{body_begin, body_end};
            facts_.out_of_line.push_back(std::move(def));
          }
          return body_close;
        }
        // Declaration (or `= default;`): skip to ';'.
        while (j < end && !is_punct(tokens_[j], ";")) ++j;
        return (j < end) ? j + 1 : end;
      }
      if (is_punct(t, "{")) {
        // Aggregate initializer or stray block: skip it.
        i = skip_balanced(tokens_, i, "{", "}");
        continue;
      }
      ++i;
    }
    return i;
  }

  /// Parses `class/struct/union Name ... { body } declarators ;`.
  /// Records the class (recursively) and returns past the statement.
  std::size_t parse_class(std::size_t i, std::size_t end) {
    ++i;  // class/struct/union
    std::string name;
    int line = (i < end) ? tokens_[i].line : 0;
    // Find the name and whether this is a definition (a '{' before ';').
    std::size_t j = i;
    std::size_t body_open = 0;
    bool definition = false;
    int depth_angle = 0;
    while (j < end) {
      const Token& t = tokens_[j];
      if (t.kind == TokenKind::kIdentifier && depth_angle == 0 &&
          !is_any(t.text, {"final", "public", "private", "protected",
                           "virtual"}) &&
          name.empty()) {
        name = t.text;
        line = t.line;
      }
      if (is_punct(t, "<")) ++depth_angle;
      if (is_punct(t, ">")) --depth_angle;
      if (is_punct(t, ">>")) depth_angle -= 2;
      if (is_punct(t, "(")) {
        // `struct X f(...)` — a declaration using an elaborated type.
        return skip_statement(j, end);
      }
      if (is_punct(t, ";")) return j + 1;  // forward decl / variable
      if (is_punct(t, "{") && depth_angle <= 0) {
        body_open = j;
        definition = true;
        break;
      }
      ++j;
    }
    if (!definition) return end;

    ClassDecl decl;
    decl.name = name.empty() ? "<anonymous>" : name;
    decl.line = line;
    const std::size_t body_close =
        parse_class_body(body_open + 1, end, decl);
    facts_.classes.push_back(std::move(decl));
    // Trailing declarators (members of an enclosing scope) up to ';'.
    std::size_t k = body_close;
    while (k < end && !is_punct(tokens_[k], ";")) ++k;
    return (k < end) ? k + 1 : end;
  }

  /// Parses statements inside a class body, filling `decl`. Returns the
  /// index just past the closing '}'.
  std::size_t parse_class_body(std::size_t i, std::size_t end,
                               ClassDecl& decl) {
    while (i < end) {
      const Token& t = tokens_[i];
      if (is_punct(t, "}")) return i + 1;
      // Access specifiers.
      if (t.kind == TokenKind::kIdentifier &&
          is_any(t.text, {"public", "private", "protected"}) && i + 1 < end &&
          is_punct(tokens_[i + 1], ":")) {
        i += 2;
        continue;
      }
      if (is_ident(t, "template")) {
        i = skip_template_header(i + 1, end);
        continue;
      }
      if (t.kind == TokenKind::kIdentifier &&
          is_any(t.text, {"using", "typedef", "friend", "static_assert",
                          "static", "constexpr"})) {
        i = skip_statement(i, end);
        continue;
      }
      if (t.kind == TokenKind::kIdentifier &&
          is_any(t.text, {"class", "struct", "union"})) {
        i = parse_nested_type(i, end, decl);
        continue;
      }
      if (is_ident(t, "enum")) {
        i = parse_enum(i, end);
        continue;
      }
      if (is_punct(t, ";")) {
        ++i;
        continue;
      }
      i = parse_member_statement(i, end, decl);
    }
    return end;
  }

  /// Nested class/struct definition at class scope; any declarators after
  /// the closing '}' become members of the *enclosing* class.
  std::size_t parse_nested_type(std::size_t i, std::size_t end,
                                ClassDecl& outer) {
    // Distinguish a definition from `struct X member_;`.
    std::size_t j = i + 1;
    while (j < end && !is_punct(tokens_[j], "{") &&
           !is_punct(tokens_[j], ";")) {
      ++j;
    }
    if (j >= end || is_punct(tokens_[j], ";")) {
      // `struct X member_;` — the declarator scan handles it.
      return parse_member_statement(i + 1, end, outer);
    }
    const std::size_t after = parse_class(i, end);
    // parse_class consumed trailing declarators up to ';'. Re-scan them
    // for member names: tokens between the nested body's '}' and ';'.
    // (Rare: anonymous-struct members. Named nested types have none.)
    (void)outer;
    return after;
  }

  std::size_t parse_enum(std::size_t i, std::size_t end) {
    ++i;  // enum
    if (i < end &&
        (is_ident(tokens_[i], "class") || is_ident(tokens_[i], "struct"))) {
      ++i;
    }
    EnumDecl decl;
    if (i < end && tokens_[i].kind == TokenKind::kIdentifier) {
      decl.name = tokens_[i].text;
      decl.line = tokens_[i].line;
      ++i;
    }
    while (i < end && !is_punct(tokens_[i], "{") &&
           !is_punct(tokens_[i], ";")) {
      ++i;  // `: underlying_type`
    }
    if (i >= end || is_punct(tokens_[i], ";")) {
      return (i < end) ? i + 1 : end;  // opaque declaration
    }
    ++i;  // '{'
    std::int64_t next_value = 0;
    bool value_known = true;
    while (i < end && !is_punct(tokens_[i], "}")) {
      if (tokens_[i].kind != TokenKind::kIdentifier) {
        ++i;
        continue;
      }
      Enumerator e;
      e.name = tokens_[i].text;
      e.line = tokens_[i].line;
      ++i;
      if (i < end && is_punct(tokens_[i], "=")) {
        std::size_t j = i + 1;
        int depth = 0;
        while (j < end) {
          const Token& t = tokens_[j];
          if (is_punct(t, "(")) ++depth;
          if (is_punct(t, ")")) --depth;
          if (depth == 0 && (is_punct(t, ",") || is_punct(t, "}"))) break;
          ++j;
        }
        if (const auto v = eval_expr(tokens_, i + 1, j)) {
          next_value = *v;
          value_known = true;
        } else {
          value_known = false;
        }
        i = j;
      }
      e.value = value_known ? std::optional<std::int64_t>(next_value)
                            : std::nullopt;
      if (value_known) ++next_value;
      decl.enumerators.push_back(std::move(e));
      if (i < end && is_punct(tokens_[i], ",")) ++i;
    }
    facts_.enums.push_back(std::move(decl));
    i = (i < end) ? i + 1 : end;  // '}'
    while (i < end && !is_punct(tokens_[i], ";")) ++i;
    return (i < end) ? i + 1 : end;
  }

  /// The core declarator scan at class scope: one statement that is
  /// either member variable(s) or a method declaration/definition.
  std::size_t parse_member_statement(std::size_t i, std::size_t end,
                                     ClassDecl& decl) {
    const int stmt_line = (i < end) ? tokens_[i].line : 0;
    std::string last_ident;
    std::size_t last_ident_pos = 0;
    int angle_depth = 0;

    auto record_member = [&](std::size_t semi_pos) {
      if (last_ident.empty()) return;
      MemberDecl m;
      m.name = last_ident;
      m.line = tokens_[last_ident_pos].line;
      m.decl_line = stmt_line;
      m.end_line =
          (semi_pos < end) ? tokens_[semi_pos].line : m.line;
      decl.members.push_back(std::move(m));
    };

    while (i < end) {
      const Token& t = tokens_[i];
      if (is_ident(t, "operator")) {
        // Conversion/overloaded operator: consume tokens until the
        // parameter list and treat as a method named "operator".
        std::size_t j = i + 1;
        if (j + 1 < end && is_punct(tokens_[j], "(") &&
            is_punct(tokens_[j + 1], ")")) {
          j += 2;  // operator()
        } else {
          while (j < end && !is_punct(tokens_[j], "(")) ++j;
        }
        last_ident = "operator";
        last_ident_pos = i;
        i = j;
        if (i < end) {
          return parse_method_tail(i, end, decl, last_ident,
                                   tokens_[last_ident_pos].line);
        }
        return end;
      }
      if (t.kind == TokenKind::kIdentifier && t.text != "mutable" &&
          t.text != "virtual" && t.text != "explicit" && t.text != "inline") {
        last_ident = t.text;
        last_ident_pos = i;
        ++i;
        continue;
      }
      if (is_punct(t, "<") && i > 0 &&
          (tokens_[i - 1].kind == TokenKind::kIdentifier ||
           is_punct(tokens_[i - 1], ">"))) {
        ++angle_depth;
        ++i;
        continue;
      }
      if (angle_depth > 0 && is_punct(t, ">")) {
        --angle_depth;
        ++i;
        continue;
      }
      if (angle_depth > 0 && is_punct(t, ">>")) {
        angle_depth = std::max(0, angle_depth - 2);
        ++i;
        continue;
      }
      if (is_punct(t, "(")) {
        if (angle_depth > 0) {
          i = skip_balanced(tokens_, i, "(", ")");
          continue;
        }
        if (last_ident.empty()) {
          // e.g. `;` noise — be defensive.
          i = skip_statement(i, end);
          return i;
        }
        return parse_method_tail(i, end, decl, last_ident,
                                 tokens_[last_ident_pos].line);
      }
      if (angle_depth == 0 &&
          (is_punct(t, "=") || is_punct(t, "{") || is_punct(t, "["))) {
        // Member with initializer / brace-init / array extent.
        std::size_t j = i;
        if (is_punct(t, "[")) {
          j = skip_balanced(tokens_, j, "[", "]");
        }
        if (j < end && is_punct(tokens_[j], "{")) {
          j = skip_balanced(tokens_, j, "{", "}");
        } else if (j < end && is_punct(tokens_[j], "=")) {
          ++j;
          int depth = 0;
          while (j < end) {
            const Token& u = tokens_[j];
            if (is_punct(u, "(") || is_punct(u, "{") || is_punct(u, "[")) {
              ++depth;
            }
            if (is_punct(u, ")") || is_punct(u, "}") || is_punct(u, "]")) {
              --depth;
            }
            if (depth <= 0 && (is_punct(u, ";") || is_punct(u, ","))) break;
            ++j;
          }
        }
        record_member(j);
        if (j < end && is_punct(tokens_[j], ",")) {
          last_ident.clear();
          i = j + 1;
          continue;
        }
        while (j < end && !is_punct(tokens_[j], ";")) ++j;
        return (j < end) ? j + 1 : end;
      }
      if (angle_depth == 0 && is_punct(t, ",")) {
        record_member(i);
        last_ident.clear();
        ++i;
        continue;
      }
      if (is_punct(t, ";")) {
        record_member(i);
        return i + 1;
      }
      if (is_punct(t, "}")) {
        // Malformed statement hitting end of class: let the body loop see
        // the brace.
        return i;
      }
      ++i;  // punctuation that is part of the type (* & :: etc.)
    }
    return end;
  }

  /// After a method's '(' at `i`: records the MethodDef and returns the
  /// index past the statement.
  std::size_t parse_method_tail(std::size_t i, std::size_t end,
                                ClassDecl& decl, const std::string& name,
                                int line) {
    MethodDef def;
    def.name = name;
    def.line = line;
    const std::size_t params_begin = i + 1;
    i = skip_balanced(tokens_, i, "(", ")");
    def.params = TokenRange{params_begin,
                            (i == tokens_.size()) ? i : i - 1};
    // Qualifiers, possibly a constructor init list, up to body or ';'.
    while (i < end && !is_punct(tokens_[i], "{") &&
           !is_punct(tokens_[i], ";") && !is_punct(tokens_[i], "=")) {
      if (is_punct(tokens_[i], "(")) {
        i = skip_balanced(tokens_, i, "(", ")");
        continue;
      }
      ++i;
    }
    if (i < end && is_punct(tokens_[i], "{")) {
      const std::size_t body_begin = i + 1;
      const std::size_t close = skip_balanced(tokens_, i, "{", "}");
      def.body = TokenRange{body_begin,
                            (close == tokens_.size()) ? close : close - 1};
      def.has_body = true;
      decl.methods.push_back(std::move(def));
      return close;
    }
    // `= default;` / `= 0;` / plain declaration.
    while (i < end && !is_punct(tokens_[i], ";")) ++i;
    decl.methods.push_back(std::move(def));
    return (i < end) ? i + 1 : end;
  }
};

}  // namespace

std::size_t skip_balanced(const std::vector<Token>& tokens, std::size_t i,
                          const char* open, const char* close) {
  int depth = 0;
  while (i < tokens.size()) {
    if (is_punct(tokens[i], open)) ++depth;
    if (is_punct(tokens[i], close)) {
      --depth;
      if (depth == 0) return i + 1;
    }
    ++i;
  }
  return tokens.size();
}

FileFacts scan(const LexedFile& file, const std::vector<std::string>& macros) {
  return Scanner(file, macros).run();
}

TokenRange find_function_body(const LexedFile& file, const std::string& name) {
  const Tokens& tokens = file.tokens;
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kIdentifier || tokens[i].text != name) {
      continue;
    }
    if (!is_punct(tokens[i + 1], "(")) continue;
    std::size_t j = skip_balanced(tokens, i + 1, "(", ")");
    bool is_def = false;
    while (j < tokens.size()) {
      if (is_punct(tokens[j], ";")) break;
      if (is_punct(tokens[j], "(")) {
        j = skip_balanced(tokens, j, "(", ")");
        continue;
      }
      if (is_punct(tokens[j], "{")) {
        is_def = true;
        break;
      }
      ++j;
    }
    if (is_def) {
      const std::size_t close = skip_balanced(tokens, j, "{", "}");
      return TokenRange{j + 1, (close == tokens.size()) ? close : close - 1};
    }
  }
  return TokenRange{};
}

}  // namespace biosense::analyze
