// Rule families of biosense-analyze. Internal to tools/analyze.
//
// Each rule gets the whole analyzed tree (cross-file by construction)
// and appends findings. Adding a rule = one function here, its
// implementation in the matching rules_*.cpp, a registration line in
// analyzer.cpp, and a must-fire + clean fixture pair under
// tests/analyze/fixtures/ (DESIGN.md §14 walks through it).
#pragma once

#include <string>
#include <vector>

#include "analyzer.hpp"
#include "lexer.hpp"
#include "scanner.hpp"

namespace biosense::analyze {

/// A source file with its lexed tokens and scanned declarations.
struct AnalyzedFile {
  SourceFile src;
  LexedFile lex;
  FileFacts facts;
};

using Tree = std::vector<AnalyzedFile>;
using Findings = std::vector<Finding>;

// --- path scoping helpers (paths are repo-relative, '/'-separated) ----------
bool path_starts_with(const std::string& path, const std::string& prefix);
bool is_header(const std::string& path);
/// "src/noise/sources.hpp" -> "noise"; "" when not under src/.
std::string src_module(const std::string& path);

// --- rule families -----------------------------------------------------------

// Snapshot completeness: member coverage + writer/reader mirror
// (rules `snapshot-coverage`, `snapshot-mirror`, `snapshot-pair`).
void rule_snapshot(const Tree& tree, Findings& out);

// Protocol schema consistency across protocol.hpp and the dispatcher
// registration (rules `proto-schema`, `proto-caps`, `proto-names`).
void rule_protocol(const Tree& tree, Findings& out);

// Obs instrument naming: literal-only names, kind consistency, no
// cross-module duplicates, claimed prefix per module (rule `obs-name`).
void rule_obs_names(const Tree& tree, Findings& out);

// Ported tools/lint.sh rules 1-8 (see each rule's message for the
// rationale): no-c-rand, no-wallclock-seed, no-std-random-engine,
// raw-unit-literal, no-chrono-in-src, no-batch-return,
// no-bool-fallible, atomic-file-only.
void rule_lint_ported(const Tree& tree, Findings& out);

// Capture hot-loop discipline: no per-pixel accessor calls, heap
// allocation or std::function inside capture_frame_into definitions
// under src/neurochip/ (rule `neuro-hot-loop`, DESIGN.md §16).
void rule_neuro_hot_loop(const Tree& tree, Findings& out);

}  // namespace biosense::analyze
