// tools/lint.sh rules 1-8, ported onto the token stream (DESIGN.md §14).
//
// Same invariants, same escape comments (`lint:allow-*`), but checked
// over tokens instead of raw lines: string literals and comments can no
// longer produce false positives, and each rule is exercised by a
// must-fire fixture + clean control under tests/analyze/fixtures/,
// which the bash greps never were. tools/lint.sh survives as a
// deprecated shim that execs the analyzer.
#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>

#include "rules.hpp"

namespace biosense::analyze {
namespace {

using Tokens = std::vector<Token>;

bool ident(const Token& t, const char* text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}
bool punct(const Token& t, const char* text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

/// rule 1: C rand()/srand() — not reproducible across libcs, poor
/// statistics; all randomness flows through common/rng.hpp (Rng).
void no_c_rand(const AnalyzedFile& f, Findings& out) {
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    const bool zero_arg_rand = ident(t[i], "rand") && punct(t[i + 1], "(") &&
                               i + 2 < t.size() && punct(t[i + 2], ")");
    const bool any_srand = ident(t[i], "srand") && punct(t[i + 1], "(");
    if (zero_arg_rand || any_srand) {
      out.push_back(Finding{f.src.path, t[i].line, "no-c-rand",
                            "C " + t[i].text +
                                "() is banned; use common/rng.hpp (Rng)"});
    }
  }
}

/// rule 2: wall-clock seeding makes runs unreproducible.
void no_wallclock_seed(const AnalyzedFile& f, Findings& out) {
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i + 3 < t.size(); ++i) {
    if (!ident(t[i], "time") || !punct(t[i + 1], "(")) continue;
    const Token& arg = t[i + 2];
    const bool null_arg = ident(arg, "NULL") || ident(arg, "nullptr") ||
                          (arg.kind == TokenKind::kNumber && arg.text == "0");
    if (null_arg && punct(t[i + 3], ")")) {
      out.push_back(Finding{f.src.path, t[i].line, "no-wallclock-seed",
                            "wall-clock seeding (time(" + arg.text +
                                ")) is banned; seeds are explicit"});
    }
  }
}

/// rule 3: nondeterministic / default-seeded standard-library engines.
void no_std_random_engine(const AnalyzedFile& f, Findings& out) {
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (ident(t[i], "random_device")) {
      out.push_back(Finding{f.src.path, t[i].line, "no-std-random-engine",
                            "std::random_device bypasses the Rng "
                            "discipline (nondeterministic)"});
      continue;
    }
    if (!(ident(t[i], "mt19937") || ident(t[i], "mt19937_64"))) continue;
    const bool default_decl = i + 2 < t.size() &&
                              t[i + 1].kind == TokenKind::kIdentifier &&
                              punct(t[i + 2], ";");
    const bool empty_ctor =
        i + 2 < t.size() && punct(t[i + 1], "(") && punct(t[i + 2], ")");
    if (default_decl || empty_ctor) {
      out.push_back(Finding{f.src.path, t[i].line, "no-std-random-engine",
                            "unseeded std::" + t[i].text +
                                " bypasses the Rng discipline"});
    }
  }
}

/// rule 4: raw unit-suffixed magic numbers in typed config headers.
bool in_typed_header_scope(const std::string& path) {
  static const char* const kDirs[] = {"src/i2f/", "src/dnachip/",
                                      "src/neurochip/", "src/circuit/",
                                      "src/noise/"};
  static const char* const kFiles[] = {
      "src/dna/electrochemistry.hpp", "src/dna/electrode.hpp",
      "src/dna/labelfree.hpp", "src/core/dna_workbench.hpp",
      "src/core/neural_workbench.hpp"};
  if (!is_header(path)) return false;
  for (const char* d : kDirs) {
    if (path_starts_with(path, d)) return true;
  }
  return std::any_of(std::begin(kFiles), std::end(kFiles),
                     [&](const char* p) { return path == p; });
}

bool comment_names_unit(const LexedFile& lex, int line) {
  static const std::set<std::string> kUnits = {
      "V",  "mV",   "uV",  "A",  "mA",  "uA", "nA", "pA", "fA", "F",
      "uF", "nF",   "pF",  "fF", "s",   "ms", "us", "ns", "Hz", "kHz",
      "MHz", "Ohm", "kOhm", "MOhm", "m", "um", "nm", "M",  "mM", "uM",
      "nM", "pM"};
  for (const Comment& c : lex.comments) {
    if (c.line != line) continue;
    std::size_t i = 0;
    while (i < c.text.size() && (c.text[i] == ' ' || c.text[i] == '(')) ++i;
    std::size_t j = i;
    while (j < c.text.size() &&
           (std::isalnum(static_cast<unsigned char>(c.text[j])))) {
      ++j;
    }
    if (j == i) continue;
    const std::string word = c.text.substr(i, j - i);
    const char next = (j < c.text.size()) ? c.text[j] : ' ';
    if (kUnits.count(word) > 0 &&
        (next == ' ' || next == ',' || next == ')' || next == '.')) {
      return true;
    }
  }
  return false;
}

void raw_unit_literal(const AnalyzedFile& f, Findings& out) {
  if (!in_typed_header_scope(f.src.path)) return;
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (!ident(t[i], "double") || t[i + 1].kind != TokenKind::kIdentifier ||
        !punct(t[i + 2], "=") || t[i + 3].kind != TokenKind::kNumber ||
        !punct(t[i + 4], ";")) {
      continue;
    }
    const double value = std::strtod(t[i + 3].text.c_str(), nullptr);
    if (value == 0.0) continue;
    const int line = t[i + 4].line;
    if (!comment_names_unit(f.lex, line)) continue;
    if (line_has_marker(f.lex, line, "lint:allow-raw-unit")) continue;
    out.push_back(Finding{
        f.src.path, t[i + 1].line, "raw-unit-literal",
        "raw unit-suffixed magic number initializing '" + t[i + 1].text +
            "' in a typed config header; use a Quantity literal (e.g. "
            "1.0_mV) or annotate lint:allow-raw-unit"});
  }
}

/// rule 5: ad-hoc wall-clock timing in library code — obs::now_ns /
/// BIOSENSE_SPAN / obs::PhaseTimer are the sanctioned clocks.
void no_chrono_in_src(const AnalyzedFile& f, Findings& out) {
  if (!path_starts_with(f.src.path, "src/") ||
      path_starts_with(f.src.path, "src/obs/")) {
    return;
  }
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i + 4 < t.size(); ++i) {
    if (ident(t[i], "std") && punct(t[i + 1], "::") &&
        ident(t[i + 2], "chrono") && punct(t[i + 3], "::") &&
        (ident(t[i + 4], "steady_clock") || ident(t[i + 4], "system_clock") ||
         ident(t[i + 4], "high_resolution_clock"))) {
      out.push_back(Finding{f.src.path, t[i].line, "no-chrono-in-src",
                            "std::chrono::" + t[i + 4].text +
                                " in src/ is banned outside src/obs/; use "
                                "obs::now_ns / BIOSENSE_SPAN / "
                                "obs::PhaseTimer"});
    }
  }
}

/// rule 6: collect-all frame APIs in src/ headers — new acquisition APIs
/// take a StreamSink; only tagged batch compat wrappers may return the
/// full vector.
void no_batch_return(const AnalyzedFile& f, Findings& out) {
  if (!path_starts_with(f.src.path, "src/") || !is_header(f.src.path)) return;
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i + 5 < t.size(); ++i) {
    if (!(ident(t[i], "std") && punct(t[i + 1], "::") &&
          ident(t[i + 2], "vector") && punct(t[i + 3], "<"))) {
      continue;
    }
    std::size_t j = i + 4;
    if (j + 1 < t.size() && ident(t[j], "neurochip") &&
        punct(t[j + 1], "::")) {
      j += 2;
    }
    if (j + 3 >= t.size() || !ident(t[j], "NeuroFrame") ||
        !punct(t[j + 1], ">") || t[j + 2].kind != TokenKind::kIdentifier ||
        !punct(t[j + 3], "(")) {
      continue;
    }
    const int line = t[j + 2].line;
    if (line_has_marker(f.lex, line, "lint:allow-batch-return")) continue;
    out.push_back(Finding{
        f.src.path, line, "no-batch-return",
        "'" + t[j + 2].text + "' returns std::vector<NeuroFrame>; take a "
            "StreamSink<NeuroFrame>& (common/stream.hpp) or tag a "
            "documented compat wrapper with lint:allow-batch-return"});
  }
}

/// rule 7: bool-returning fallible APIs in src/host/ headers — the host
/// error convention is Result<T, HostStatus> (DESIGN.md §12).
void no_bool_fallible(const AnalyzedFile& f, Findings& out) {
  if (!path_starts_with(f.src.path, "src/host/") || !is_header(f.src.path)) {
    return;
  }
  static const std::set<std::string> kPredicates = {"ok",     "exhausted",
                                                    "empty",  "closed",
                                                    "any",    "decoded"};
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (!ident(t[i], "bool") || t[i + 1].kind != TokenKind::kIdentifier ||
        !punct(t[i + 2], "(")) {
      continue;
    }
    const std::string& name = t[i + 1].text;
    if (name.rfind("is_", 0) == 0 || name.rfind("has_", 0) == 0 ||
        kPredicates.count(name) > 0) {
      continue;
    }
    const int line = t[i + 1].line;
    if (line_has_marker(f.lex, line, "lint:allow-bool")) continue;
    out.push_back(Finding{
        f.src.path, line, "no-bool-fallible",
        "bool-returning fallible API '" + name + "' in a src/host/ header; "
            "return Result<T, HostStatus> (common/result.hpp, DESIGN.md "
            "§12) or, for a genuine single-bit fact, annotate "
            "lint:allow-bool"});
  }
}

/// rule 8: raw file writes in src/snapshot/ outside atomic_file.cpp —
/// checkpoint bytes go through the crash-safe write-temp-then-rename
/// protocol or a torn file is only rejectable, not recoverable.
void atomic_file_only(const AnalyzedFile& f, Findings& out) {
  if (!path_starts_with(f.src.path, "src/snapshot/") ||
      f.src.path == "src/snapshot/atomic_file.cpp") {
    return;
  }
  const Tokens& t = f.lex.tokens;
  for (std::size_t i = 0; i < t.size(); ++i) {
    const bool raw_io =
        ident(t[i], "fopen") || ident(t[i], "ofstream") ||
        ident(t[i], "fstream") ||
        (ident(t[i], "FILE") && i > 0 && punct(t[i - 1], "::"));
    if (raw_io) {
      out.push_back(Finding{
          f.src.path, t[i].line, "atomic-file-only",
          "raw file I/O ('" + t[i].text + "') in src/snapshot/ is banned "
              "outside atomic_file.cpp; use write_file_atomic / "
              "CheckpointStore (crash-safe write-temp-then-rename)"});
    }
  }
}

}  // namespace

void rule_lint_ported(const Tree& tree, Findings& out) {
  for (const AnalyzedFile& f : tree) {
    no_c_rand(f, out);
    no_wallclock_seed(f, out);
    no_std_random_engine(f, out);
    raw_unit_literal(f, out);
    no_chrono_in_src(f, out);
    no_batch_return(f, out);
    no_bool_fallible(f, out);
    atomic_file_only(f, out);
  }
}

}  // namespace biosense::analyze
