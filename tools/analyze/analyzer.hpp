// biosense-analyze: first-party cross-file invariant analyzer
// (DESIGN.md §14).
//
// The analyzer loads every first-party source into memory, lexes and
// scans each one (lexer.hpp / scanner.hpp), then runs a fixed catalogue
// of structural rules over the whole set at once — which is what lets
// it check cross-file invariants a per-line grep never could: a class
// declared in a header against its save_state/load_state defined in a
// .cpp, the HostCommand enum against the dispatcher's schema table, an
// instrument name against every other instrument name in the tree.
//
// Findings are `file:line: rule-name: message`, stable-sorted, and the
// process exits nonzero when any are present — the same contract the
// old tools/lint.sh had, so CI and editors keep clickable output.
//
// The library is deliberately separable from file I/O: tests feed
// in-memory SourceFiles (fixture corpora, programmatic mutations of
// real sources) through the same `analyze()` entry point the CLI uses.
#pragma once

#include <string>
#include <vector>

namespace biosense::analyze {

struct SourceFile {
  std::string path;  // repo-relative, '/'-separated (e.g. "src/a/b.hpp")
  std::string content;
};

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Runs every rule over `files` and returns findings sorted by
/// (file, line, rule).
std::vector<Finding> analyze(const std::vector<SourceFile>& files);

/// One output line: "file:line: rule: message".
std::string format_finding(const Finding& f);

/// Rule-name/one-line-description pairs for --list-rules and DESIGN.md.
std::vector<std::pair<std::string, std::string>> rule_catalogue();

/// Loads the first-party tree under `root` (src/, tests/, bench/,
/// examples/, tools/ — *.hpp/*.cpp, excluding tests/analyze/fixtures,
/// which contain deliberate violations). Paths in the result are
/// root-relative. Throws std::runtime_error when `root` has no src/.
std::vector<SourceFile> load_tree(const std::string& root);

}  // namespace biosense::analyze
