// Declaration scanner for biosense-analyze (DESIGN.md §14).
//
// Walks the token stream of one file and extracts the structural facts
// the cross-file rules consume:
//
//   * classes/structs with their instance data members and the token
//     ranges of any in-class method bodies (recursing into nested
//     types, so a nested struct's fields never leak into the outer
//     class's member list);
//   * out-of-line method definitions (`void Class::method(...) {...}`);
//   * enums (scoped or not) with enumerator names, values and lines;
//   * namespace-scope integer constants (`inline constexpr T kFoo = N;`)
//     with small-expression evaluation (literals and `a << b`), enough
//     for protocol version windows and capability bit masks;
//   * macro-style instrument calls (`BIOSENSE_COUNT("name", ...)`).
//
// The scanner is heuristic by design — it does not build an AST, it
// recognizes the declaration idioms this repo actually uses — and every
// recognized shape is pinned by tests/analyze fixtures so drift in the
// codebase style shows up as a test failure, not silent rot.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace biosense::analyze {

/// Half-open token range [begin, end) into LexedFile::tokens.
struct TokenRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  bool empty() const { return begin >= end; }
};

struct MemberDecl {
  std::string name;
  int line = 0;       // line of the declarator identifier
  int decl_line = 0;  // first line of the declaration statement
  int end_line = 0;   // line of the terminating ';'
};

struct MethodDef {
  std::string name;
  int line = 0;
  TokenRange params;  // inside the ( )
  TokenRange body;    // inside the { } (empty when only declared)
  bool has_body = false;
};

struct ClassDecl {
  std::string name;
  int line = 0;
  std::vector<MemberDecl> members;
  std::vector<MethodDef> methods;  // only those with in-class bodies or decls
};

/// `Ret Class::method(...) { ... }` at namespace scope.
struct OutOfLineDef {
  std::string class_name;
  std::string method;
  int line = 0;
  TokenRange params;
  TokenRange body;
};

struct Enumerator {
  std::string name;
  int line = 0;
  std::optional<std::int64_t> value;  // explicit or running-count value
};

struct EnumDecl {
  std::string name;
  int line = 0;
  std::vector<Enumerator> enumerators;
};

struct ConstInt {
  std::string name;
  int line = 0;
  std::int64_t value = 0;
};

/// One `NAME("literal", ...)` macro-style call site.
struct MacroCall {
  std::string macro;
  int line = 0;
  bool first_arg_is_literal = false;
  std::string literal;  // adjacent string literals concatenated
};

struct FileFacts {
  std::vector<ClassDecl> classes;
  std::vector<OutOfLineDef> out_of_line;
  std::vector<EnumDecl> enums;
  std::vector<ConstInt> const_ints;
  std::vector<MacroCall> macro_calls;
};

/// Extracts facts from a lexed file. `macros` lists the macro-style call
/// names to collect (e.g. {"BIOSENSE_COUNT", ...}).
FileFacts scan(const LexedFile& file, const std::vector<std::string>& macros);

/// Finds the body token range of the function named `name` (method or
/// free function) anywhere in the file; empty range when absent.
TokenRange find_function_body(const LexedFile& file, const std::string& name);

/// Skips from an opening bracket token at `i` to just past its matching
/// closer. `open`/`close` are punct texts ("{"/"}", "("/")"). Returns
/// tokens.size() when unbalanced.
std::size_t skip_balanced(const std::vector<Token>& tokens, std::size_t i,
                          const char* open, const char* close);

}  // namespace biosense::analyze
